use crisp_isa::Decoded;

use crate::soft_error::{apply_fault, entry_bits, parity32, FaultField, ParityMode};

/// One resident cache line: the decoded entry plus its parity state.
///
/// `stored_parity` is the parity word written at fill time over the
/// canonical [`entry_bits`] image. `live_parity` tracks the parity of
/// the bits *physically* in the array: it equals `stored_parity` until
/// a fault flips a storage bit, at which point the two differ in the
/// flipped bit's column. Keeping both models a real parity check —
/// single-bit faults always detect, while an even number of flips in
/// one column cancels (parity's standard blind spot).
#[derive(Debug, Clone, Copy)]
struct CacheLine {
    d: Decoded,
    stored_parity: u32,
    live_parity: u32,
}

/// The result of a parity-checked cache read.
///
/// A hit borrows the resident entry instead of copying it out:
/// `Decoded` is `Copy` but spans several machine words (operands,
/// Next-PC, Alternate Next-PC), and the fetch stage reads one entry per
/// cycle — the single hottest load in the cycle engine. Consumers that
/// need an owned copy (the EU latching into its `Slot`) dereference
/// exactly once, matching [`DecodedCache::lookup`]'s by-reference
/// shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup<'a> {
    /// A valid entry with matching tag (and clean parity, when checked).
    Hit(&'a Decoded),
    /// No entry, or the tag did not match.
    Miss,
    /// The slot's parity check failed: the entry was invalidated and
    /// the access must take the miss path (redecode from memory).
    ParityError,
}

/// The Decoded Instruction Cache.
///
/// Direct-mapped, indexed by the low bits of the *parcel* address
/// (the paper: "the low five bits are used to address the Decoded
/// Instruction Cache" for the 32-entry chip), tagged with the full PC.
/// Each entry is one canonical decoded instruction carrying its Next-PC
/// and Alternate Next-PC fields — the structure that makes branch
/// folding possible.
///
/// Under [`ParityMode::DetectInvalidate`] every fill also stores a
/// parity word over the entry image; [`DecodedCache::lookup_verified`]
/// checks it and turns a corrupted slot into an invalidate-plus-miss.
/// Because the cache is never written back — entries are pure decode
/// products of instruction memory — invalidate-and-redecode is a
/// complete recovery.
#[derive(Debug, Clone)]
pub struct DecodedCache {
    entries: Vec<Option<CacheLine>>,
    mask: u32,
    parity: ParityMode,
    /// Fills that made a new PC resident: into an empty slot or over a
    /// different tag. A same-PC re-decode is a [`refill`], not an
    /// insert, so `inserts` counts distinct decoded entries becoming
    /// visible rather than raw PDU write traffic.
    ///
    /// [`refill`]: DecodedCache::refills
    pub inserts: u64,
    /// Fills that overwrote the *same* PC (the PDU re-decoded an entry
    /// that was already resident, e.g. after a wrong-path excursion).
    /// `inserts + refills` equals the total fills — one per
    /// [`crate::PipeEvent::CacheFill`] event.
    pub refills: u64,
    /// Insertions that overwrote a valid entry with a different tag.
    pub evictions: u64,
    /// Slots invalidated by a failed parity check (each one also
    /// produced a [`crate::PipeEvent::ParityError`] event). The PDU
    /// also bumps this when parity catches a corrupted in-flight entry
    /// at its fill port — the entry is dropped before it reaches the
    /// array, but it is the same detect-and-discard event.
    pub parity_invalidates: u64,
    /// Parity detections per slot, feeding the degrade policy.
    slot_parity_hits: Vec<u32>,
    /// Slots taken out of service by the degrade policy. A disabled
    /// slot's traffic remaps onto its partner (index with the low bit
    /// flipped), so the machine keeps running — with more conflict
    /// misses — instead of re-filling a faulty slot forever.
    disabled: Vec<bool>,
    /// Parity hits on one slot before it is disabled; `None` never
    /// degrades.
    degrade_limit: Option<u32>,
    /// Slots disabled since the engine last drained the queue.
    pending_degraded: Vec<u32>,
}

impl DecodedCache {
    /// Create an unprotected cache with `entries` slots (must be a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> DecodedCache {
        DecodedCache::with_parity(entries, ParityMode::Off)
    }

    /// Create a cache with `entries` slots and the given parity mode.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero or not a power of two.
    pub fn with_parity(entries: usize, parity: ParityMode) -> DecodedCache {
        assert!(
            entries.is_power_of_two() && entries >= 1,
            "cache size must be a power of two"
        );
        DecodedCache {
            entries: vec![None; entries],
            mask: entries as u32 - 1,
            parity,
            inserts: 0,
            refills: 0,
            evictions: 0,
            parity_invalidates: 0,
            slot_parity_hits: vec![0; entries],
            disabled: vec![false; entries],
            degrade_limit: None,
            pending_degraded: Vec::new(),
        }
    }

    /// The configured parity mode (the PDU's fill port checks it to
    /// decide whether a corrupted in-flight entry is droppable).
    pub fn parity_mode(&self) -> ParityMode {
        self.parity
    }

    /// Arm (or disarm) the degrade policy: a slot accumulating `limit`
    /// parity detections is taken out of service and its traffic
    /// remapped onto the partner slot.
    pub fn set_degrade(&mut self, limit: Option<u32>) {
        self.degrade_limit = limit;
    }

    /// Drain one pending slot-disablement (for the engine to turn into
    /// a `Degrade` event + stat); `None` when nothing new degraded.
    pub fn take_degraded(&mut self) -> Option<u32> {
        self.pending_degraded.pop()
    }

    /// Slots currently out of service under the degrade policy.
    pub fn degraded_slots(&self) -> u64 {
        self.disabled.iter().filter(|&&d| d).count() as u64
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has no valid entries.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    fn index(&self, pc: u32) -> usize {
        let idx = ((pc >> 1) & self.mask) as usize;
        if self.disabled[idx] {
            // Remap onto the partner slot (low index bit flipped). When
            // the partner is also disabled — or the cache has a single
            // slot — keep the home index; it simply never hits.
            let partner = (idx ^ 1) & self.mask as usize;
            if !self.disabled[partner] {
                return partner;
            }
        }
        idx
    }

    /// The slot index `pc` maps to (exposed for fault planning: a
    /// [`crate::FaultPlan`] names slots, not PCs).
    pub fn slot_of(&self, pc: u32) -> usize {
        self.index(pc)
    }

    /// Look up the entry decoded at `pc`, without a parity check.
    pub fn lookup(&self, pc: u32) -> Option<&Decoded> {
        self.entries[self.index(pc)]
            .as_ref()
            .map(|line| &line.d)
            .filter(|d| d.pc == pc)
    }

    /// Look up the entry decoded at `pc`, checking parity first when
    /// [`ParityMode::DetectInvalidate`] is configured.
    ///
    /// The parity check runs *before* the tag compare — corrupted bits
    /// cannot be trusted to include a correct tag — so a slot whose
    /// stored bits no longer match their fill-time parity is
    /// invalidated and reported as [`CacheLookup::ParityError`] no
    /// matter which PC probed it. The caller then takes the ordinary
    /// miss path and the PDU redecodes the entry from memory.
    pub fn lookup_verified(&mut self, pc: u32) -> CacheLookup<'_> {
        let idx = self.index(pc);
        // The invalidate (needing `&mut`) happens before the borrow of
        // the line is handed out, so the hit path can return a
        // reference into the slot.
        let parity_failed = matches!(&self.entries[idx], Some(line)
            if self.parity == ParityMode::DetectInvalidate
                && line.live_parity != line.stored_parity);
        if parity_failed {
            self.entries[idx] = None;
            self.parity_invalidates += 1;
            self.slot_parity_hits[idx] += 1;
            if let Some(limit) = self.degrade_limit {
                if self.slot_parity_hits[idx] >= limit && !self.disabled[idx] {
                    self.disabled[idx] = true;
                    self.pending_degraded.push(idx as u32);
                }
            }
            return CacheLookup::ParityError;
        }
        match &self.entries[idx] {
            Some(line) if line.d.pc == pc => CacheLookup::Hit(&line.d),
            _ => CacheLookup::Miss,
        }
    }

    /// Whether `pc` currently hits.
    pub fn contains(&self, pc: u32) -> bool {
        self.lookup(pc).is_some()
    }

    /// Insert a decoded entry, evicting any conflicting one; returns
    /// the PC of the evicted entry when a different tag was displaced.
    /// A same-PC overwrite counts as a refill, not a fresh insert.
    pub fn insert(&mut self, d: Decoded) -> Option<u32> {
        let idx = self.index(d.pc);
        let mut evicted = None;
        match &self.entries[idx] {
            Some(old) if old.d.pc == d.pc => self.refills += 1,
            Some(old) => {
                self.evictions += 1;
                evicted = Some(old.d.pc);
                self.inserts += 1;
            }
            None => self.inserts += 1,
        }
        let parity = match self.parity {
            ParityMode::Off => 0,
            ParityMode::DetectInvalidate => parity32(&entry_bits(&d)),
        };
        self.entries[idx] = Some(CacheLine {
            d,
            stored_parity: parity,
            live_parity: parity,
        });
        evicted
    }

    /// Flip one bit of the entry resident in `slot` (taken modulo the
    /// cache size) — the transient-fault injection point. Returns the
    /// PC of the corrupted entry, or `None` when the slot held nothing
    /// (the fault lands in invalid state and has no effect).
    ///
    /// A [`FaultField::Valid`] fault clears the slot (a live valid bit
    /// can only flip to invalid). Any other fault re-encodes the entry,
    /// flips the mapped bit, and stores the total re-decode; the slot's
    /// `live_parity` is updated to the parity of the flipped bits, so a
    /// later [`DecodedCache::lookup_verified`] sees exactly what a
    /// hardware parity check would.
    pub fn corrupt(&mut self, slot: usize, field: FaultField) -> Option<u32> {
        let idx = slot % self.entries.len();
        let line = self.entries[idx].as_mut()?;
        let pc = line.d.pc;
        match apply_fault(&line.d, field) {
            None => self.entries[idx] = None,
            Some(corrupted) => {
                let (_, bit) = field.bit().expect("non-valid faults map to a bit");
                line.d = corrupted;
                line.live_parity ^= 1 << (bit % 32);
            }
        }
        Some(pc)
    }

    /// Invalidate everything (used between experiment runs).
    pub fn clear(&mut self) {
        self.entries.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{ExecOp, FoldClass, NextPc};

    fn entry(pc: u32) -> Decoded {
        Decoded {
            pc,
            len_bytes: 2,
            exec: ExecOp::Nop,
            modifies_cc: false,
            modifies_sp: false,
            fold: FoldClass::Sequential,
            folded: false,
            branch_pc: None,
            next_pc: NextPc::Known(pc + 2),
            alt_pc: None,
        }
    }

    #[test]
    fn hit_requires_tag_match() {
        let mut c = DecodedCache::new(32);
        c.insert(entry(0x10));
        assert!(c.contains(0x10));
        // Same index (32 entries × 2-byte parcels = 64-byte window):
        // 0x10 + 64 = 0x50 maps to the same slot but a different tag.
        assert!(!c.contains(0x50));
        assert_eq!(c.lookup(0x10).unwrap().pc, 0x10);
    }

    #[test]
    fn conflicting_insert_evicts() {
        let mut c = DecodedCache::new(32);
        assert_eq!(c.insert(entry(0x10)), None);
        assert_eq!(c.insert(entry(0x10 + 64)), Some(0x10));
        assert!(!c.contains(0x10));
        assert!(c.contains(0x10 + 64));
        assert_eq!(c.evictions, 1);
        assert_eq!(c.inserts, 2);
    }

    #[test]
    fn reinsert_same_pc_is_a_refill_not_an_insert() {
        let mut c = DecodedCache::new(32);
        c.insert(entry(0x10));
        c.insert(entry(0x10));
        assert_eq!(c.evictions, 0);
        assert_eq!(c.inserts, 1);
        assert_eq!(c.refills, 1);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = DecodedCache::new(4);
        c.insert(entry(0));
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(0));
    }

    #[test]
    fn small_cache_wraps() {
        let mut c = DecodedCache::new(2);
        // Parcel addresses 0 and 4 map to slots 0 and 0 (with mask 1,
        // index of pc=4 is (4>>1)&1 = 0).
        c.insert(entry(0));
        c.insert(entry(4));
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(c.contains(4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        DecodedCache::new(3);
    }

    #[test]
    fn corrupt_flips_a_field_and_parity_catches_it() {
        let mut c = DecodedCache::with_parity(32, ParityMode::DetectInvalidate);
        c.insert(entry(0x10));
        let slot = c.slot_of(0x10);
        assert_eq!(c.corrupt(slot, FaultField::NextPc(2)), Some(0x10));
        // The stored entry changed but the tag still matches ...
        assert_eq!(c.lookup(0x10).unwrap().next_pc, NextPc::Known(0x12 ^ 1));
        // ... and the verified lookup detects, invalidates, counts.
        assert_eq!(c.lookup_verified(0x10), CacheLookup::ParityError);
        assert_eq!(c.parity_invalidates, 1);
        assert!(!c.contains(0x10));
        assert_eq!(c.lookup_verified(0x10), CacheLookup::Miss);
        // A refill restores clean parity.
        c.insert(entry(0x10));
        assert_eq!(c.lookup_verified(0x10), CacheLookup::Hit(&entry(0x10)));
        assert_eq!(c.parity_invalidates, 1);
    }

    #[test]
    fn corrupt_tag_is_caught_before_tag_compare() {
        let mut c = DecodedCache::with_parity(32, ParityMode::DetectInvalidate);
        c.insert(entry(0x10));
        let slot = c.slot_of(0x10);
        // Flip a high tag bit: the entry now claims a different PC.
        assert_eq!(c.corrupt(slot, FaultField::Tag(31)), Some(0x10));
        // The probe at the original PC still reaches the slot, and the
        // parity check fires before the (now wrong) tag can turn the
        // access into a silent miss that leaves the corpse resident.
        assert_eq!(c.lookup_verified(0x10), CacheLookup::ParityError);
        assert!(c.is_empty());
    }

    #[test]
    fn corrupt_valid_bit_clears_slot() {
        let mut c = DecodedCache::new(4);
        c.insert(entry(0));
        assert_eq!(c.corrupt(c.slot_of(0), FaultField::Valid), Some(0));
        assert!(c.is_empty());
        // Faulting an empty slot corrupts nothing.
        assert_eq!(c.corrupt(0, FaultField::Predict), None);
    }

    #[test]
    fn unprotected_cache_serves_corrupted_entries() {
        let mut c = DecodedCache::new(32);
        c.insert(entry(0x10));
        c.corrupt(c.slot_of(0x10), FaultField::NextPc(2));
        // ParityMode::Off: the corrupted entry hits as if nothing
        // happened — the SDC path the fault campaign measures.
        let looked = c.lookup_verified(0x10);
        assert!(matches!(looked, CacheLookup::Hit(d) if d.next_pc == NextPc::Known(0x12 ^ 1)));
        assert_eq!(c.parity_invalidates, 0);
    }
}

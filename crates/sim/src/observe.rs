//! Structured observability for the cycle-level simulator.
//!
//! The pipeline, PDU and decoded cache report their per-cycle activity
//! as typed [`PipeEvent`]s through the [`PipeObserver`] trait. The
//! default observer, [`NullObserver`], is a set of empty inlined
//! methods that monomorphize away — the uninstrumented simulator pays
//! nothing. Real observers collect events into a bounded ring
//! ([`EventRing`]), aggregate them per branch site
//! ([`crate::BranchProfiler`]), or both at once (observers compose as
//! tuples).
//!
//! On top of the event stream this module provides three renderings:
//!
//! * [`write_jsonl`] / [`parse_jsonl`] — one flat JSON object per
//!   event, the machine-readable trace format;
//! * [`write_chrome_trace`] — Chrome `trace_event` JSON that opens
//!   directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * [`render_timeline`] — a Konata-style ASCII lane diagram of the
//!   IR→OR→RR flow around a window of cycles, with squash markers.
//!
//! Event ↔ counter contract: every [`crate::CycleStats`] counter bump
//! has a corresponding event, so an [`EventRing`] large enough to hold
//! the whole run reconciles *exactly* with the end-of-run stats (the
//! `prop_observer` property test enforces this):
//!
//! | counter                  | events                                  |
//! |--------------------------|-----------------------------------------|
//! | `issued`                 | `Issue`                                 |
//! | `program_instrs`         | `Issue` + folded `Issue`                |
//! | `cond_branches`          | `BranchRetire`                          |
//! | `mispredicts_by_stage[s]`| `BranchResolve { stage: s, mispredicted }`|
//! | `resolved_at_fetch`      | `BranchResolve { stage: 0, .. }`        |
//! | `flushed_slots`          | `Squash`                                |
//! | `icache_hits`/`misses`   | `FetchHit` / `FetchMiss`                |
//! | `miss_stall_cycles`      | `StallBegin`/`StallEnd` (kind Miss)     |
//! | `indirect_stall_cycles`  | `StallBegin`/`StallEnd` (kind Indirect) |
//! | `pdu_decodes`            | `Decode`                                |
//! | `cache_inserts` + `cache_refills` | `CacheFill`                    |
//! | `cache_evictions`        | `CacheFill { evicted: Some(_), .. }`    |
//! | `faults_injected`        | `FaultInject`                           |
//! | `parity_invalidates`     | `ParityError`                           |
//! | `degraded_ways`          | `Degrade`                               |
//!
//! `Commit` events sit outside the counter table: they carry the
//! architectural state at the shared commit point and back the
//! differential oracle (see [`crate::CommitRecord`]).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;

use crisp_isa::FoldFailure;

use crate::geometry::PipelineGeometry;

/// What the Execution Unit is stalled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Decoded-cache miss: waiting for the PDU to fill the entry.
    Miss,
    /// Waiting for an indirect branch target to resolve at retire.
    Indirect,
}

impl StallKind {
    fn name(self) -> &'static str {
        match self {
            StallKind::Miss => "miss",
            StallKind::Indirect => "indirect",
        }
    }

    fn from_name(s: &str) -> Option<StallKind> {
        match s {
            "miss" => Some(StallKind::Miss),
            "indirect" => Some(StallKind::Indirect),
            _ => None,
        }
    }
}

/// Which front-end structure the degrade policy took a unit out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeUnit {
    /// A decoded-cache slot (traffic remaps onto the partner slot).
    Cache,
    /// A BTB way (the set associativity shrinks by one).
    Btb,
}

impl DegradeUnit {
    fn name(self) -> &'static str {
        match self {
            DegradeUnit::Cache => "cache",
            DegradeUnit::Btb => "btb",
        }
    }

    fn from_name(s: &str) -> Option<DegradeUnit> {
        match s {
            "cache" => Some(DegradeUnit::Cache),
            "btb" => Some(DegradeUnit::Btb),
            _ => None,
        }
    }
}

/// One typed observation from the simulator.
///
/// Stage indices follow the mispredict-penalty convention of
/// [`crate::CycleStats::mispredicts_by_stage`]: at the default
/// [`crate::PipelineGeometry`], 0 = cache-read time, 1 = IR, 2 = OR,
/// 3 = RR; at EU depth `D` in general, 0 is still cache-read time and
/// the retire stage carries index `D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEvent {
    /// EU fetch hit the decoded cache; the entry enters IR this cycle.
    FetchHit {
        /// Cycle of the fetch.
        cycle: u64,
        /// Address of the fetched entry.
        pc: u32,
        /// Whether the entry carries a folded branch.
        folded: bool,
    },
    /// EU fetch missed the decoded cache (counted once per missing
    /// address, like [`crate::CycleStats::icache_misses`]).
    FetchMiss {
        /// Cycle of the first stalled fetch.
        cycle: u64,
        /// The missing address.
        pc: u32,
    },
    /// The PDU decoded one instruction (possibly on the wrong path).
    Decode {
        /// Cycle of the decode.
        cycle: u64,
        /// Address of the decoded instruction.
        pc: u32,
        /// Whether a branch was folded into the entry.
        folded: bool,
    },
    /// The PDU folded the branch at `branch_pc` into the entry at `pc`.
    Fold {
        /// Cycle of the decode.
        cycle: u64,
        /// Host entry address.
        pc: u32,
        /// Address of the absorbed branch.
        branch_pc: u32,
    },
    /// A branch directly followed the entry at `pc` but could not fold.
    FoldFail {
        /// Cycle of the decode.
        cycle: u64,
        /// Host entry address.
        pc: u32,
        /// Address of the branch that stayed separate.
        branch_pc: u32,
        /// Which folding rule blocked it.
        reason: FoldFailure,
    },
    /// The PDU wrote an entry into the decoded cache.
    CacheFill {
        /// Cycle the entry became visible.
        cycle: u64,
        /// Address of the entry.
        pc: u32,
        /// Address of a conflicting entry this fill evicted, if any.
        evicted: Option<u32>,
    },
    /// A valid entry retired from RR (an EU issue).
    Issue {
        /// Cycle of the retirement.
        cycle: u64,
        /// Address of the entry.
        pc: u32,
        /// Whether the entry carried a folded branch.
        folded: bool,
    },
    /// A conditional branch retired, reporting its direction.
    BranchRetire {
        /// Cycle of the retirement.
        cycle: u64,
        /// Address of the branch instruction.
        branch_pc: u32,
        /// The actual direction.
        taken: bool,
        /// The static prediction bit.
        predicted: bool,
        /// Whether the branch was folded with its host.
        folded: bool,
    },
    /// A live dynamic predictor ([`crate::SimConfig::predictor`], any
    /// non-static variant) was consulted for a conditional entry at
    /// cache-read time. Emitted at the guess, before the outcome is
    /// known; together with the [`PipeEvent::BranchRetire`] stream
    /// (the training points) it lets a trace-driven model replay the
    /// pipeline's exact predict/update interleaving — the
    /// cross-validation in `tests/prop_predictor_xval.rs`. Never
    /// emitted under the static bit, which consults no table.
    Predict {
        /// Cycle of the lookup.
        cycle: u64,
        /// Address of the branch instruction (the predictor's key).
        branch_pc: u32,
        /// The predicted direction.
        guess: bool,
        /// Whether the guess was the table's miss default (no resident
        /// entry) rather than a trained direction.
        miss: bool,
    },
    /// A conditional branch's direction became certain.
    BranchResolve {
        /// Cycle of the resolution.
        cycle: u64,
        /// Address of the branch instruction.
        branch_pc: u32,
        /// Where it resolved: 0 = cache read, then one index per EU
        /// stage up to retire (1 = IR, 2 = OR, 3 = RR at the default
        /// geometry). The mispredict penalty equals this index.
        stage: u8,
        /// Whether the followed path was wrong (recovery required).
        mispredicted: bool,
    },
    /// A wrong-path slot was cancelled (valid bit cleared).
    Squash {
        /// Cycle of the cancellation.
        cycle: u64,
        /// Address of the killed entry.
        pc: u32,
        /// The stage holding it, as a resolve index: `1..=depth-1`
        /// (1 = IR, 2 = OR at the default geometry — the retire stage
        /// cannot be squashed).
        stage: u8,
    },
    /// The EU began stalling.
    StallBegin {
        /// First stalled cycle.
        cycle: u64,
        /// What it stalls on.
        kind: StallKind,
    },
    /// The EU stopped stalling; stalled cycles = `cycle` − begin cycle.
    StallEnd {
        /// First non-stalled cycle.
        cycle: u64,
        /// What it was stalling on.
        kind: StallKind,
    },
    /// A transient fault ([`crate::SimConfig::fault_plan`]) flipped
    /// bits in a live decoded-cache entry.
    FaultInject {
        /// Cycle of the strike.
        cycle: u64,
        /// The struck cache slot.
        slot: u32,
        /// Address of the entry that was resident (and corrupted).
        pc: u32,
    },
    /// A parity check caught a corrupted decoded-cache entry at read
    /// time; the entry was invalidated and will be redecoded.
    ParityError {
        /// Cycle of the failed fetch.
        cycle: u64,
        /// The fetch address whose slot failed its check.
        pc: u32,
        /// The invalidated cache slot.
        slot: u32,
    },
    /// The degrade policy ([`crate::SimConfig::degrade`]) took a unit
    /// out of service after repeated parity detections: the machine
    /// keeps running — slower — on the surviving capacity.
    Degrade {
        /// Cycle of the disablement.
        cycle: u64,
        /// Which structure lost capacity.
        unit: DegradeUnit,
        /// The disabled cache slot or BTB way position.
        way: u32,
    },
    /// `halt` retired; the run is over.
    Halt {
        /// Cycle of the halt.
        cycle: u64,
    },
    /// One entry retired at the shared commit point
    /// ([`crate::Machine::execute_observed`]), carrying the
    /// architectural state the commit produced. Both engines emit an
    /// identical `Commit` stream for the same program — the invariant
    /// the differential oracle ([`crate::run_lockstep`]) checks.
    Commit {
        /// Cycle (cycle engine) or step index (functional engine).
        cycle: u64,
        /// Address of the (host) entry that committed.
        pc: u32,
        /// The architecturally correct next PC.
        next_pc: u32,
        /// Address of the branch the entry carried, if any (folded
        /// branches and standalone branch entries alike).
        branch_pc: Option<u32>,
        /// Whether the entry carried a folded branch.
        folded: bool,
        /// For conditional entries, the actual direction taken.
        taken: Option<bool>,
        /// Accumulator after the commit.
        accum: i32,
        /// Stack pointer after the commit.
        sp: u32,
        /// PSW condition flag after the commit.
        flag: bool,
        /// The memory word this instruction wrote (word-aligned
        /// address, value), if any. The ISA writes at most one word
        /// per instruction.
        mem_write: Option<(u32, i32)>,
        /// Whether this commit was a `halt`.
        halted: bool,
    },
}

impl PipeEvent {
    /// The cycle the event belongs to.
    pub fn cycle(&self) -> u64 {
        match *self {
            PipeEvent::FetchHit { cycle, .. }
            | PipeEvent::FetchMiss { cycle, .. }
            | PipeEvent::Decode { cycle, .. }
            | PipeEvent::Fold { cycle, .. }
            | PipeEvent::FoldFail { cycle, .. }
            | PipeEvent::CacheFill { cycle, .. }
            | PipeEvent::Issue { cycle, .. }
            | PipeEvent::BranchRetire { cycle, .. }
            | PipeEvent::Predict { cycle, .. }
            | PipeEvent::BranchResolve { cycle, .. }
            | PipeEvent::Squash { cycle, .. }
            | PipeEvent::StallBegin { cycle, .. }
            | PipeEvent::StallEnd { cycle, .. }
            | PipeEvent::FaultInject { cycle, .. }
            | PipeEvent::ParityError { cycle, .. }
            | PipeEvent::Degrade { cycle, .. }
            | PipeEvent::Halt { cycle }
            | PipeEvent::Commit { cycle, .. } => cycle,
        }
    }
}

/// A sink for pipeline events.
///
/// Implementations should be cheap: the simulator calls [`event`] from
/// its inner loop. The associated `ENABLED` constant lets call sites
/// skip event construction entirely for the no-op observer, so the
/// default-instantiated simulator compiles to exactly the
/// uninstrumented code.
///
/// [`event`]: PipeObserver::event
pub trait PipeObserver {
    /// Whether this observer consumes events. Call sites guard event
    /// construction on it; when `false` the whole emission path folds
    /// away at monomorphization.
    const ENABLED: bool = true;

    /// Receive one event.
    fn event(&mut self, ev: PipeEvent);
}

/// The zero-overhead default observer: does nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl PipeObserver for NullObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: PipeEvent) {}
}

/// Observers compose: a tuple forwards every event to both members.
impl<A: PipeObserver, B: PipeObserver> PipeObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn event(&mut self, ev: PipeEvent) {
        self.0.event(ev);
        self.1.event(ev);
    }
}

/// A bounded ring buffer of events: keeps the most recent `capacity`
/// and counts what it had to drop.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<PipeEvent>,
    capacity: usize,
    /// Events discarded because the ring was full (oldest first).
    pub dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &PipeEvent> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the ring into a `Vec`, oldest first.
    pub fn into_vec(self) -> Vec<PipeEvent> {
        self.buf.into()
    }
}

impl PipeObserver for EventRing {
    #[inline]
    fn event(&mut self, ev: PipeEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

// ---------------------------------------------------------------------
// JSONL serialization
// ---------------------------------------------------------------------

/// A malformed trace line encountered by [`parse_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl PipeEvent {
    /// One flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = match *self {
            PipeEvent::FetchHit { cycle, pc, folded } => write!(
                s,
                r#"{{"ev":"fetch_hit","cycle":{cycle},"pc":{pc},"folded":{folded}}}"#
            ),
            PipeEvent::FetchMiss { cycle, pc } => {
                write!(s, r#"{{"ev":"fetch_miss","cycle":{cycle},"pc":{pc}}}"#)
            }
            PipeEvent::Decode { cycle, pc, folded } => {
                write!(
                    s,
                    r#"{{"ev":"decode","cycle":{cycle},"pc":{pc},"folded":{folded}}}"#
                )
            }
            PipeEvent::Fold {
                cycle,
                pc,
                branch_pc,
            } => write!(
                s,
                r#"{{"ev":"fold","cycle":{cycle},"pc":{pc},"branch_pc":{branch_pc}}}"#
            ),
            PipeEvent::FoldFail {
                cycle,
                pc,
                branch_pc,
                reason,
            } => write!(
                s,
                r#"{{"ev":"fold_fail","cycle":{cycle},"pc":{pc},"branch_pc":{branch_pc},"reason":"{reason}"}}"#
            ),
            PipeEvent::CacheFill { cycle, pc, evicted } => match evicted {
                Some(e) => write!(
                    s,
                    r#"{{"ev":"cache_fill","cycle":{cycle},"pc":{pc},"evicted":{e}}}"#
                ),
                None => write!(
                    s,
                    r#"{{"ev":"cache_fill","cycle":{cycle},"pc":{pc},"evicted":null}}"#
                ),
            },
            PipeEvent::Issue { cycle, pc, folded } => {
                write!(
                    s,
                    r#"{{"ev":"issue","cycle":{cycle},"pc":{pc},"folded":{folded}}}"#
                )
            }
            PipeEvent::BranchRetire {
                cycle,
                branch_pc,
                taken,
                predicted,
                folded,
            } => write!(
                s,
                r#"{{"ev":"branch_retire","cycle":{cycle},"branch_pc":{branch_pc},"taken":{taken},"predicted":{predicted},"folded":{folded}}}"#
            ),
            PipeEvent::Predict {
                cycle,
                branch_pc,
                guess,
                miss,
            } => write!(
                s,
                r#"{{"ev":"predict","cycle":{cycle},"branch_pc":{branch_pc},"guess":{guess},"miss":{miss}}}"#
            ),
            PipeEvent::BranchResolve {
                cycle,
                branch_pc,
                stage,
                mispredicted,
            } => write!(
                s,
                r#"{{"ev":"branch_resolve","cycle":{cycle},"branch_pc":{branch_pc},"stage":{stage},"mispredicted":{mispredicted}}}"#
            ),
            PipeEvent::Squash { cycle, pc, stage } => {
                write!(
                    s,
                    r#"{{"ev":"squash","cycle":{cycle},"pc":{pc},"stage":{stage}}}"#
                )
            }
            PipeEvent::StallBegin { cycle, kind } => write!(
                s,
                r#"{{"ev":"stall_begin","cycle":{cycle},"kind":"{}"}}"#,
                kind.name()
            ),
            PipeEvent::StallEnd { cycle, kind } => write!(
                s,
                r#"{{"ev":"stall_end","cycle":{cycle},"kind":"{}"}}"#,
                kind.name()
            ),
            PipeEvent::FaultInject { cycle, slot, pc } => write!(
                s,
                r#"{{"ev":"fault_inject","cycle":{cycle},"slot":{slot},"pc":{pc}}}"#
            ),
            PipeEvent::ParityError { cycle, pc, slot } => write!(
                s,
                r#"{{"ev":"parity_error","cycle":{cycle},"pc":{pc},"slot":{slot}}}"#
            ),
            PipeEvent::Degrade { cycle, unit, way } => write!(
                s,
                r#"{{"ev":"degrade","cycle":{cycle},"unit":"{}","way":{way}}}"#,
                unit.name()
            ),
            PipeEvent::Halt { cycle } => write!(s, r#"{{"ev":"halt","cycle":{cycle}}}"#),
            PipeEvent::Commit {
                cycle,
                pc,
                next_pc,
                branch_pc,
                folded,
                taken,
                accum,
                sp,
                flag,
                mem_write,
                halted,
            } => {
                let opt = |v: Option<u32>| match v {
                    Some(n) => n.to_string(),
                    None => "null".to_string(),
                };
                let (mw_addr, mw_val) = match mem_write {
                    Some((a, v)) => (a.to_string(), v.to_string()),
                    None => ("null".to_string(), "null".to_string()),
                };
                let taken = match taken {
                    Some(b) => b.to_string(),
                    None => "null".to_string(),
                };
                write!(
                    s,
                    r#"{{"ev":"commit","cycle":{cycle},"pc":{pc},"next_pc":{next_pc},"branch_pc":{},"folded":{folded},"taken":{taken},"accum":{accum},"sp":{sp},"flag":{flag},"mw_addr":{mw_addr},"mw_val":{mw_val},"halted":{halted}}}"#,
                    opt(branch_pc)
                )
            }
        };
        s
    }

    /// Parse one line produced by [`PipeEvent::to_json`].
    ///
    /// # Errors
    ///
    /// A message describing the malformation.
    pub fn from_json(line: &str) -> Result<PipeEvent, String> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{k}`"))
        };
        let num = |k: &str| -> Result<u64, String> {
            match get(k)? {
                JsonValue::Num(n) => {
                    u64::try_from(*n).map_err(|_| format!("field `{k}`: negative"))
                }
                v => Err(format!("field `{k}`: expected number, got {v:?}")),
            }
        };
        let signed = |k: &str| -> Result<i32, String> {
            match get(k)? {
                JsonValue::Num(n) => {
                    i32::try_from(*n).map_err(|_| format!("field `{k}`: out of range"))
                }
                v => Err(format!("field `{k}`: expected number, got {v:?}")),
            }
        };
        let opt_pc = |k: &str| -> Result<Option<u32>, String> {
            match get(k)? {
                JsonValue::Null => Ok(None),
                JsonValue::Num(n) => u32::try_from(*n)
                    .map(Some)
                    .map_err(|_| format!("field `{k}`: out of range")),
                v => Err(format!("field `{k}`: expected number/null, got {v:?}")),
            }
        };
        let opt_bool = |k: &str| -> Result<Option<bool>, String> {
            match get(k)? {
                JsonValue::Null => Ok(None),
                JsonValue::Bool(b) => Ok(Some(*b)),
                v => Err(format!("field `{k}`: expected bool/null, got {v:?}")),
            }
        };
        let boolean = |k: &str| -> Result<bool, String> {
            match get(k)? {
                JsonValue::Bool(b) => Ok(*b),
                v => Err(format!("field `{k}`: expected bool, got {v:?}")),
            }
        };
        let string = |k: &str| -> Result<&str, String> {
            match get(k)? {
                JsonValue::Str(s) => Ok(s.as_str()),
                v => Err(format!("field `{k}`: expected string, got {v:?}")),
            }
        };
        let pc = |k: &str| -> Result<u32, String> {
            u32::try_from(num(k)?).map_err(|_| format!("field `{k}`: out of range"))
        };
        let cycle = num("cycle")?;
        match string("ev")? {
            "fetch_hit" => Ok(PipeEvent::FetchHit {
                cycle,
                pc: pc("pc")?,
                folded: boolean("folded")?,
            }),
            "fetch_miss" => Ok(PipeEvent::FetchMiss {
                cycle,
                pc: pc("pc")?,
            }),
            "decode" => Ok(PipeEvent::Decode {
                cycle,
                pc: pc("pc")?,
                folded: boolean("folded")?,
            }),
            "fold" => Ok(PipeEvent::Fold {
                cycle,
                pc: pc("pc")?,
                branch_pc: pc("branch_pc")?,
            }),
            "fold_fail" => {
                let reason = string("reason")?;
                Ok(PipeEvent::FoldFail {
                    cycle,
                    pc: pc("pc")?,
                    branch_pc: pc("branch_pc")?,
                    reason: reason
                        .parse()
                        .map_err(|()| format!("unknown fold-fail reason `{reason}`"))?,
                })
            }
            "cache_fill" => Ok(PipeEvent::CacheFill {
                cycle,
                pc: pc("pc")?,
                evicted: opt_pc("evicted")?,
            }),
            "commit" => Ok(PipeEvent::Commit {
                cycle,
                pc: pc("pc")?,
                next_pc: pc("next_pc")?,
                branch_pc: opt_pc("branch_pc")?,
                folded: boolean("folded")?,
                taken: opt_bool("taken")?,
                accum: signed("accum")?,
                sp: pc("sp")?,
                flag: boolean("flag")?,
                mem_write: match (opt_pc("mw_addr")?, get("mw_val")?) {
                    (None, _) => None,
                    (Some(a), _) => Some((a, signed("mw_val")?)),
                },
                halted: boolean("halted")?,
            }),
            "issue" => Ok(PipeEvent::Issue {
                cycle,
                pc: pc("pc")?,
                folded: boolean("folded")?,
            }),
            "branch_retire" => Ok(PipeEvent::BranchRetire {
                cycle,
                branch_pc: pc("branch_pc")?,
                taken: boolean("taken")?,
                predicted: boolean("predicted")?,
                folded: boolean("folded")?,
            }),
            "predict" => Ok(PipeEvent::Predict {
                cycle,
                branch_pc: pc("branch_pc")?,
                guess: boolean("guess")?,
                miss: boolean("miss")?,
            }),
            "branch_resolve" => Ok(PipeEvent::BranchResolve {
                cycle,
                branch_pc: pc("branch_pc")?,
                stage: num("stage")? as u8,
                mispredicted: boolean("mispredicted")?,
            }),
            "squash" => Ok(PipeEvent::Squash {
                cycle,
                pc: pc("pc")?,
                stage: num("stage")? as u8,
            }),
            "stall_begin" => Ok(PipeEvent::StallBegin {
                cycle,
                kind: StallKind::from_name(string("kind")?)
                    .ok_or_else(|| format!("unknown stall kind `{}`", string("kind").unwrap()))?,
            }),
            "stall_end" => Ok(PipeEvent::StallEnd {
                cycle,
                kind: StallKind::from_name(string("kind")?)
                    .ok_or_else(|| format!("unknown stall kind `{}`", string("kind").unwrap()))?,
            }),
            "fault_inject" => Ok(PipeEvent::FaultInject {
                cycle,
                slot: pc("slot")?,
                pc: pc("pc")?,
            }),
            "parity_error" => Ok(PipeEvent::ParityError {
                cycle,
                pc: pc("pc")?,
                slot: pc("slot")?,
            }),
            "degrade" => Ok(PipeEvent::Degrade {
                cycle,
                unit: DegradeUnit::from_name(string("unit")?)
                    .ok_or_else(|| format!("unknown degrade unit `{}`", string("unit").unwrap()))?,
                way: pc("way")?,
            }),
            other => Err(format!("unknown event type `{other}`")),
        }
        .or_else(|e: String| {
            if string("ev") == Ok("halt") {
                Ok(PipeEvent::Halt { cycle })
            } else {
                Err(e)
            }
        })
    }
}

#[derive(Debug)]
enum JsonValue {
    Num(i64),
    Bool(bool),
    Str(String),
    Null,
}

/// Parse a single-level `{"key":value,...}` object with (possibly
/// negative) integer, bool, string and null values — exactly the shape
/// [`PipeEvent::to_json`] emits. Not a general JSON parser.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let after_key = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected key at `{rest}`"))?;
        let end = after_key
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &after_key[..end];
        rest = after_key[end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected `:` after key `{key}`"))?
            .trim_start();
        let (value, remainder) = if let Some(after) = rest.strip_prefix('"') {
            let end = after
                .find('"')
                .ok_or_else(|| "unterminated string".to_string())?;
            (JsonValue::Str(after[..end].to_string()), &after[end + 1..])
        } else if let Some(after) = rest.strip_prefix("true") {
            (JsonValue::Bool(true), after)
        } else if let Some(after) = rest.strip_prefix("false") {
            (JsonValue::Bool(false), after)
        } else if let Some(after) = rest.strip_prefix("null") {
            (JsonValue::Null, after)
        } else {
            let digits = rest.strip_prefix('-').unwrap_or(rest);
            let end = digits
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(digits.len());
            if end == 0 {
                return Err(format!("bad value at `{rest}`"));
            }
            let lit = &rest[..rest.len() - (digits.len() - end)];
            let n = lit.parse().map_err(|_| format!("bad number `{lit}`"))?;
            (JsonValue::Num(n), &digits[end..])
        };
        fields.push((key.to_string(), value));
        rest = remainder.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected `,` at `{rest}`"));
        }
    }
    Ok(fields)
}

/// Write events as JSON Lines (one object per line).
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_jsonl<'a, W, I>(w: &mut W, events: I) -> io::Result<()>
where
    W: io::Write + ?Sized,
    I: IntoIterator<Item = &'a PipeEvent>,
{
    for ev in events {
        writeln!(w, "{}", ev.to_json())?;
    }
    Ok(())
}

/// The `ev` value of the trace footer line (see [`TraceFooter`]).
const TRACE_FOOTER_EV: &str = "trace_footer";

/// End-of-trace summary line written by `crisp-run --trace`: how many
/// events the file holds and how many the capturing [`EventRing`]
/// dropped. A non-zero `dropped` flags the trace as truncated — any
/// attribution derived from its events covers only the captured tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFooter {
    /// Events written to the trace.
    pub events: u64,
    /// Events the ring discarded (oldest first) during capture.
    pub dropped: u64,
}

impl TraceFooter {
    /// The footer as one JSONL line (same flat shape as the events).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"ev":"{TRACE_FOOTER_EV}","events":{},"dropped":{}}}"#,
            self.events, self.dropped
        )
    }
}

/// Write the end-of-trace footer line after the events of a JSONL
/// trace.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_trace_footer<W: io::Write + ?Sized>(w: &mut W, footer: TraceFooter) -> io::Result<()> {
    writeln!(w, "{}", footer.to_json())
}

/// Parse a JSONL trace back into events. Blank lines and the
/// [`TraceFooter`] summary line are skipped, so traces written with and
/// without a footer both round-trip.
///
/// # Errors
///
/// [`TraceParseError`] naming the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<PipeEvent>, TraceParseError> {
    let mut out = Vec::new();
    let footer_tag = format!(r#""ev":"{TRACE_FOOTER_EV}""#);
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.contains(&footer_tag) {
            continue;
        }
        out.push(
            PipeEvent::from_json(line).map_err(|message| TraceParseError {
                line: i + 1,
                message,
            })?,
        );
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------

/// Write a Chrome `trace_event` JSON document for the event stream of
/// a default-geometry (3-stage EU) run. See [`write_chrome_trace_for`].
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_chrome_trace<W: io::Write + ?Sized>(
    w: &mut W,
    events: &[PipeEvent],
) -> io::Result<()> {
    write_chrome_trace_for(w, events, PipelineGeometry::crisp())
}

/// Write a Chrome `trace_event` JSON document for the event stream of
/// a run at geometry `geo`.
///
/// One simulated cycle maps to one microsecond of trace time.
/// Instructions appear as depth-cycle spans (IR→OR→RR on the paper's
/// machine) rotated over depth lanes so overlapping lifetimes stay
/// readable; squashes, mispredict resolutions and stalls get their own
/// lanes. Open the file in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_chrome_trace_for<W: io::Write + ?Sized>(
    w: &mut W,
    events: &[PipeEvent],
    geo: PipelineGeometry,
) -> io::Result<()> {
    // Lanes (thread ids) of the exported trace: one per EU stage, then
    // branch events / stalls / the PDU.
    let instr_lanes = geo.depth() as u64;
    let lane_events = instr_lanes;
    let lane_stalls = instr_lanes + 1;
    let lane_pdu = instr_lanes + 2;
    let mut items: Vec<String> = Vec::new();
    // The process name carries the geometry and its stage legend, so a
    // non-default depth is visible in the viewer without decoding lane
    // counts by eye.
    items.push(format!(
        r#"{{"ph":"M","name":"process_name","pid":0,"args":{{"name":"crisp EU {geo} ({})"}}}}"#,
        geo.stage_legend()
    ));
    for lane in 0..instr_lanes {
        items.push(format!(
            r#"{{"ph":"M","name":"thread_name","pid":0,"tid":{lane},"args":{{"name":"pipeline lane {lane} of {instr_lanes}"}}}}"#
        ));
    }
    items.push(format!(
        r#"{{"ph":"M","name":"thread_name","pid":0,"tid":{lane_events},"args":{{"name":"branch events"}}}}"#
    ));
    items.push(format!(
        r#"{{"ph":"M","name":"thread_name","pid":0,"tid":{lane_stalls},"args":{{"name":"stalls"}}}}"#
    ));
    items.push(format!(
        r#"{{"ph":"M","name":"thread_name","pid":0,"tid":{lane_pdu},"args":{{"name":"pdu"}}}}"#
    ));

    let mut open_stall: Option<(StallKind, u64)> = None;
    for ev in events {
        match *ev {
            PipeEvent::FetchHit { cycle, pc, folded } => {
                let lane = cycle % instr_lanes;
                let name = if folded {
                    format!("{pc:#x}+fold")
                } else {
                    format!("{pc:#x}")
                };
                items.push(format!(
                    r#"{{"ph":"X","name":"{name}","cat":"instr","pid":0,"tid":{lane},"ts":{cycle},"dur":{}}}"#,
                    geo.depth()
                ));
            }
            PipeEvent::Squash { cycle, pc, stage } => {
                items.push(format!(
                    r#"{{"ph":"i","name":"squash {pc:#x} @{}","cat":"squash","pid":0,"tid":{lane_events},"ts":{cycle},"s":"t"}}"#,
                    geo.stage_name(stage as usize)
                ));
            }
            PipeEvent::BranchResolve {
                cycle,
                branch_pc,
                stage,
                mispredicted,
            } => {
                let verdict = if mispredicted {
                    "MISPREDICT"
                } else {
                    "resolve"
                };
                items.push(format!(
                    r#"{{"ph":"i","name":"{verdict} {branch_pc:#x} @{}","cat":"branch","pid":0,"tid":{lane_events},"ts":{cycle},"s":"t"}}"#,
                    geo.stage_name(stage as usize)
                ));
            }
            PipeEvent::StallBegin { cycle, kind } => open_stall = Some((kind, cycle)),
            PipeEvent::StallEnd { cycle, kind } => {
                if let Some((k, begin)) = open_stall.take() {
                    if k == kind && cycle >= begin {
                        items.push(format!(
                            r#"{{"ph":"X","name":"{} stall","cat":"stall","pid":0,"tid":{lane_stalls},"ts":{begin},"dur":{}}}"#,
                            kind.name(),
                            cycle - begin
                        ));
                    }
                }
            }
            PipeEvent::Decode { cycle, pc, .. } => {
                items.push(format!(
                    r#"{{"ph":"X","name":"decode {pc:#x}","cat":"pdu","pid":0,"tid":{lane_pdu},"ts":{cycle},"dur":1}}"#
                ));
            }
            PipeEvent::Halt { cycle } => {
                items.push(format!(
                    r#"{{"ph":"i","name":"halt","cat":"instr","pid":0,"tid":{lane_events},"ts":{cycle},"s":"g"}}"#
                ));
            }
            _ => {}
        }
    }
    write!(w, r#"{{"displayTimeUnit":"ms","traceEvents":["#)?;
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{item}")?;
    }
    write!(w, "]}}")
}

// ---------------------------------------------------------------------
// ASCII timeline
// ---------------------------------------------------------------------

/// Cycles at which a mispredicted branch resolved, oldest first —
/// the interesting centers for [`render_timeline`] windows.
pub fn mispredict_cycles(events: &[PipeEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|ev| match *ev {
            PipeEvent::BranchResolve {
                cycle,
                mispredicted: true,
                ..
            } => Some(cycle),
            _ => None,
        })
        .collect()
}

struct TimelineRow {
    pc: u32,
    fetch: u64,
    folded: bool,
    /// `(cycle, stage)` of the squash, if the instance was killed.
    squashed: Option<(u64, u8)>,
}

/// Render the ASCII lane diagram for a default-geometry (3-stage EU)
/// run. See [`render_timeline_for`].
pub fn render_timeline(events: &[PipeEvent], from: u64, to: u64) -> String {
    render_timeline_for(events, from, to, PipelineGeometry::crisp())
}

/// Render a Konata-style ASCII lane diagram of cycles
/// `[from, to]` for a run at geometry `geo`: one row per fetched
/// instruction, columns per cycle, one glyph per EU stage occupied
/// (`I`/`O`/`R` on the paper's machine), `x` where a squash killed the
/// slot, and a `v` header marking mispredict-resolution cycles.
pub fn render_timeline_for(
    events: &[PipeEvent],
    from: u64,
    to: u64,
    geo: PipelineGeometry,
) -> String {
    let (from, to) = (from.min(to), from.max(to));
    let last_offset = (geo.depth() - 1) as u64;
    let mut rows: Vec<TimelineRow> = Vec::new();
    let mut mispredicts: Vec<u64> = Vec::new();
    for ev in events {
        match *ev {
            PipeEvent::FetchHit { cycle, pc, folded }
                if cycle <= to && cycle + last_offset >= from =>
            {
                rows.push(TimelineRow {
                    pc,
                    fetch: cycle,
                    folded,
                    squashed: None,
                });
            }
            PipeEvent::Squash { cycle, pc, stage } => {
                // The slot in stage s at cycle c was fetched at c - s.
                let fetch = cycle.saturating_sub(u64::from(stage));
                if let Some(row) = rows
                    .iter_mut()
                    .rev()
                    .find(|r| r.pc == pc && r.fetch == fetch && r.squashed.is_none())
                {
                    row.squashed = Some((cycle, stage));
                }
            }
            PipeEvent::BranchResolve {
                cycle,
                mispredicted: true,
                ..
            } if (from..=to).contains(&cycle) => {
                mispredicts.push(cycle);
            }
            _ => {}
        }
    }

    let width = (to - from + 1) as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cycles {from}..{to}  ({} x=squashed v=mispredict)",
        geo.stage_legend()
    );
    let mut header = String::from("            ");
    for c in from..=to {
        header.push(if mispredicts.contains(&c) { 'v' } else { ' ' });
    }
    out.push_str(header.trim_end());
    out.push('\n');
    for row in &rows {
        let mut lane = vec![' '; width];
        let mark = |lane: &mut Vec<char>, cycle: u64, ch: char| {
            if (from..=to).contains(&cycle) {
                lane[(cycle - from) as usize] = ch;
            }
        };
        let end = match row.squashed {
            Some((cycle, _)) => cycle,
            None => row.fetch + last_offset,
        };
        for offset in 0..geo.depth() {
            let ch = geo.stage_char(offset);
            let cycle = row.fetch + offset as u64;
            if cycle < end || (row.squashed.is_none() && cycle == end) {
                mark(&mut lane, cycle, ch);
            }
        }
        if let Some((cycle, _)) = row.squashed {
            mark(&mut lane, cycle, 'x');
        }
        let tag = if row.folded { "+f" } else { "  " };
        let lane: String = lane.into_iter().collect();
        let _ = writeln!(out, "{:#08x}{tag}  {}", row.pc, lane.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<PipeEvent> {
        vec![
            PipeEvent::FetchMiss { cycle: 0, pc: 0 },
            PipeEvent::StallBegin {
                cycle: 0,
                kind: StallKind::Miss,
            },
            PipeEvent::Decode {
                cycle: 1,
                pc: 0,
                folded: true,
            },
            PipeEvent::Fold {
                cycle: 1,
                pc: 0,
                branch_pc: 2,
            },
            PipeEvent::FoldFail {
                cycle: 2,
                pc: 4,
                branch_pc: 8,
                reason: FoldFailure::HostTooLong,
            },
            PipeEvent::CacheFill {
                cycle: 3,
                pc: 0,
                evicted: None,
            },
            PipeEvent::CacheFill {
                cycle: 4,
                pc: 64,
                evicted: Some(0),
            },
            PipeEvent::StallEnd {
                cycle: 4,
                kind: StallKind::Miss,
            },
            PipeEvent::FetchHit {
                cycle: 4,
                pc: 0,
                folded: true,
            },
            PipeEvent::Predict {
                cycle: 4,
                branch_pc: 2,
                guess: true,
                miss: false,
            },
            PipeEvent::Predict {
                cycle: 4,
                branch_pc: 6,
                guess: false,
                miss: true,
            },
            PipeEvent::BranchResolve {
                cycle: 5,
                branch_pc: 2,
                stage: 1,
                mispredicted: true,
            },
            PipeEvent::Squash {
                cycle: 6,
                pc: 12,
                stage: 2,
            },
            PipeEvent::Issue {
                cycle: 7,
                pc: 0,
                folded: true,
            },
            PipeEvent::BranchRetire {
                cycle: 7,
                branch_pc: 2,
                taken: true,
                predicted: false,
                folded: true,
            },
            PipeEvent::StallBegin {
                cycle: 8,
                kind: StallKind::Indirect,
            },
            PipeEvent::StallEnd {
                cycle: 9,
                kind: StallKind::Indirect,
            },
            PipeEvent::FaultInject {
                cycle: 9,
                slot: 1,
                pc: 2,
            },
            PipeEvent::ParityError {
                cycle: 9,
                pc: 2,
                slot: 1,
            },
            PipeEvent::Degrade {
                cycle: 10,
                unit: DegradeUnit::Btb,
                way: 3,
            },
            PipeEvent::Commit {
                cycle: 7,
                pc: 0,
                next_pc: 12,
                branch_pc: Some(2),
                folded: true,
                taken: Some(true),
                accum: -5,
                sp: 0x3_fffc,
                flag: true,
                mem_write: Some((0x1_0000, -42)),
                halted: false,
            },
            PipeEvent::Commit {
                cycle: 10,
                pc: 12,
                next_pc: 12,
                branch_pc: None,
                folded: false,
                taken: None,
                accum: 0,
                sp: 0x4_0000,
                flag: false,
                mem_write: None,
                halted: true,
            },
            PipeEvent::Halt { cycle: 10 },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_jsonl("{\"ev\":\"halt\",\"cycle\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_jsonl(r#"{"ev":"warp","cycle":1}"#).unwrap_err();
        assert!(err.message.contains("warp"), "{err}");
    }

    #[test]
    fn trace_footer_round_trips_through_parser() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        write_trace_footer(
            &mut buf,
            TraceFooter {
                events: events.len() as u64,
                dropped: 7,
            },
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let footer_line = text.lines().last().unwrap();
        assert_eq!(
            footer_line,
            format!(
                r#"{{"ev":"trace_footer","events":{},"dropped":7}}"#,
                events.len()
            )
        );
        // The footer is skipped on parse, so a footered trace yields
        // exactly the events a footerless one does.
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut ring = EventRing::new(2);
        for c in 0..5 {
            ring.event(PipeEvent::Halt { cycle: c });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped, 3);
        let kept: Vec<u64> = ring.events().map(|e| e.cycle()).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn tuple_observer_fans_out() {
        let mut pair = (EventRing::new(8), EventRing::new(8));
        pair.event(PipeEvent::Halt { cycle: 1 });
        assert_eq!(pair.0.len(), 1);
        assert_eq!(pair.1.len(), 1);
        const { assert!(<(EventRing, EventRing)>::ENABLED) };
        const { assert!(!NullObserver::ENABLED) };
    }

    #[test]
    fn chrome_trace_is_json_shaped() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains(r#""traceEvents":["#));
        assert!(text.contains("MISPREDICT"));
        assert!(text.contains("miss stall"));
        // Balanced braces — cheap structural sanity without a parser.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn chrome_trace_tracks_name_the_geometry() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("crisp EU D=3 (I=IR O=OR R=RR)"), "{text}");
        assert!(text.contains("pipeline lane 0 of 3"), "{text}");

        // A deep pipe gets its own lane count, legend, and stage names
        // (a resolve at stage 4 of D=5 is E4, not an out-of-range RR).
        let deep = vec![
            PipeEvent::FetchHit {
                cycle: 0,
                pc: 0,
                folded: false,
            },
            PipeEvent::BranchResolve {
                cycle: 4,
                branch_pc: 0,
                stage: 4,
                mispredicted: true,
            },
        ];
        let mut buf = Vec::new();
        write_chrome_trace_for(&mut buf, &deep, PipelineGeometry::new(5)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("crisp EU D=5"), "{text}");
        assert!(text.contains("pipeline lane 4 of 5"), "{text}");
        assert!(text.contains("MISPREDICT 0x0 @E4"), "{text}");
    }

    #[test]
    fn timeline_draws_stages_and_squashes() {
        let events = vec![
            PipeEvent::FetchHit {
                cycle: 4,
                pc: 0,
                folded: false,
            },
            PipeEvent::FetchHit {
                cycle: 5,
                pc: 2,
                folded: true,
            },
            // The pc=2 slot is killed in OR at cycle 7.
            PipeEvent::Squash {
                cycle: 7,
                pc: 2,
                stage: 2,
            },
            PipeEvent::BranchResolve {
                cycle: 7,
                branch_pc: 0,
                stage: 3,
                mispredicted: true,
            },
        ];
        let text = render_timeline(&events, 4, 8);
        assert!(
            text.contains("I O R".replace(' ', "").as_str()) || text.contains("IOR"),
            "{text}"
        );
        assert!(text.contains('x'), "{text}");
        assert!(text.contains('v'), "{text}");
        assert!(text.contains("+f"), "{text}");
        assert_eq!(mispredict_cycles(&events), vec![7]);
    }
}

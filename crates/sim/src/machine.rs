use crisp_asm::Image;
use crisp_isa::{BinOp, Decoded, ExecOp, FoldClass, NextPc, Operand, Psw};

use crate::observe::{PipeEvent, PipeObserver};
use crate::{Memory, SimError};

/// Default memory size: 256 KiB covers the default memory map (code at
/// 0, data at 64 KiB, stack top just below 256 KiB).
pub const DEFAULT_MEMORY_BYTES: u32 = 0x0004_0000;

/// The architectural state of the machine: memory, stack pointer,
/// accumulator, PSW flag and (for the functional engine) the PC.
///
/// Both simulation engines mutate a `Machine` exclusively through
/// [`Machine::execute`], which applies one decoded entry atomically —
/// the reconstruction's commit point (the hardware's result-write at the
/// end of the RR stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Simulated memory.
    pub mem: Memory,
    /// Stack pointer (byte address, grows down).
    pub sp: u32,
    /// The accumulator (the paper's `Accum`).
    pub accum: i32,
    /// Program status word (the condition flag).
    pub psw: Psw,
    /// Architectural program counter.
    pub pc: u32,
    /// Whether a `halt` has been executed.
    pub halted: bool,
    /// First byte of the loaded text segment (`image.code_base`).
    text_base: u32,
    /// One past the last byte of the loaded text segment.
    text_end: u32,
}

/// The result of executing one decoded entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The architecturally correct next PC.
    pub next_pc: u32,
    /// For conditional entries, whether the branch was taken.
    pub taken: Option<bool>,
    /// The memory word this entry wrote (word-aligned address, value),
    /// if any — the ISA writes at most one word per instruction.
    pub mem_write: Option<(u32, i32)>,
    /// Whether this entry halted the machine.
    pub halted: bool,
}

impl Machine {
    /// Build a machine with `size` bytes of memory and load `image`.
    ///
    /// # Errors
    ///
    /// [`SimError::ImageTooLarge`] when the image (code, data or stack
    /// top) does not fit.
    pub fn with_memory(image: &Image, size: u32) -> Result<Machine, SimError> {
        if image.min_memory_bytes() > size {
            return Err(SimError::ImageTooLarge {
                required: image.min_memory_bytes(),
                available: size,
            });
        }
        let mut mem = Memory::new(size);
        for (i, &parcel) in image.parcels.iter().enumerate() {
            mem.write_parcel(image.code_base + i as u32 * 2, parcel)?;
        }
        for (base, words) in &image.data {
            for (i, &w) in words.iter().enumerate() {
                mem.write_word(base + i as u32 * 4, w)?;
            }
        }
        Ok(Machine {
            mem,
            sp: image.stack_top.unwrap_or(Image::DEFAULT_STACK_TOP),
            accum: 0,
            psw: Psw::new(),
            pc: image.entry,
            halted: false,
            text_base: image.code_base,
            text_end: image.code_base + image.parcels.len() as u32 * 2,
        })
    }

    /// Build a machine with the default 256 KiB memory and load `image`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::with_memory`].
    pub fn load(image: &Image) -> Result<Machine, SimError> {
        Machine::with_memory(image, DEFAULT_MEMORY_BYTES.max(image.min_memory_bytes()))
    }

    /// First byte of the loaded text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// One past the last byte of the loaded text segment.
    pub fn text_end(&self) -> u32 {
        self.text_end
    }

    /// Reinitialise this machine in place to the state a fresh
    /// [`Machine::load`] of `image` would produce, reusing the memory
    /// allocation. Campaign workers run millions of short cases; zeroing
    /// and rewriting an existing buffer avoids a fresh multi-hundred-KiB
    /// allocation (and its page faults) per case.
    ///
    /// The result is bit-identical to a fresh load — including the
    /// memory *size*, which is `max(DEFAULT_MEMORY_BYTES,
    /// image.min_memory_bytes())` and therefore reallocated only when
    /// the target size actually differs from the current one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::with_memory`].
    pub fn reset_from(&mut self, image: &Image) -> Result<(), SimError> {
        let size = DEFAULT_MEMORY_BYTES.max(image.min_memory_bytes());
        if image.min_memory_bytes() > size {
            return Err(SimError::ImageTooLarge {
                required: image.min_memory_bytes(),
                available: size,
            });
        }
        if self.mem.size() != size {
            self.mem = Memory::new(size);
        } else {
            self.mem.zero();
        }
        for (i, &parcel) in image.parcels.iter().enumerate() {
            self.mem
                .write_parcel(image.code_base + i as u32 * 2, parcel)?;
        }
        for (base, words) in &image.data {
            for (i, &w) in words.iter().enumerate() {
                self.mem.write_word(base + i as u32 * 4, w)?;
            }
        }
        self.sp = image.stack_top.unwrap_or(Image::DEFAULT_STACK_TOP);
        self.accum = 0;
        self.psw = Psw::new();
        self.pc = image.entry;
        self.halted = false;
        self.text_base = image.code_base;
        self.text_end = image.code_base + image.parcels.len() as u32 * 2;
        Ok(())
    }

    /// Read the value of an operand.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] for wild addresses.
    pub fn read_operand(&self, op: Operand) -> Result<i32, SimError> {
        match op {
            Operand::Accum => Ok(self.accum),
            Operand::Imm(v) => Ok(v),
            Operand::SpOff(off) => self.mem.read_word(self.sp.wrapping_add(off as u32)),
            Operand::Abs(a) => self.mem.read_word(a),
            Operand::SpInd(off) => {
                let ptr = self.mem.read_word(self.sp.wrapping_add(off as u32))?;
                self.mem.read_word(ptr as u32)
            }
        }
    }

    /// Write a value to an operand location. Returns the memory write
    /// performed — `(word-aligned address, value)` — or `None` when the
    /// destination is the accumulator (or a discarded immediate).
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] for wild addresses. A write to an
    /// immediate destination is discarded: the encoder rejects such
    /// instructions, so it can only arise from a corrupted decoded
    /// entry (see [`crate::soft_error`]), where "the result goes
    /// nowhere" is the natural don't-care behaviour.
    pub fn write_operand(
        &mut self,
        op: Operand,
        value: i32,
    ) -> Result<Option<(u32, i32)>, SimError> {
        let store = |mem: &mut crate::Memory, addr: u32| -> Result<Option<(u32, i32)>, SimError> {
            mem.write_word(addr, value)?;
            Ok(Some((addr & !3, value)))
        };
        match op {
            Operand::Accum => {
                self.accum = value;
                Ok(None)
            }
            Operand::Imm(_) => Ok(None),
            Operand::SpOff(off) => store(&mut self.mem, self.sp.wrapping_add(off as u32)),
            Operand::Abs(a) => store(&mut self.mem, a),
            Operand::SpInd(off) => {
                let ptr = self.mem.read_word(self.sp.wrapping_add(off as u32))?;
                store(&mut self.mem, ptr as u32)
            }
        }
    }

    /// Resolve a `NextPc` against current state (after the entry's
    /// operation has executed).
    fn resolve_next(&self, next: NextPc) -> Result<u32, SimError> {
        Ok(match next {
            NextPc::Known(a) => a,
            NextPc::IndAbs(a) => self.mem.read_word(a)? as u32,
            NextPc::IndSp(off) => self.mem.read_word(self.sp.wrapping_add(off as u32))? as u32,
            // `FromRet` is resolved inside RetPop before SP moves; by the
            // time we get here SP has been incremented, so look below it.
            NextPc::FromRet => self.mem.read_word(self.sp.wrapping_sub(4))? as u32,
        })
    }

    /// Execute one decoded entry: apply its operation, update the PSW,
    /// and compute the architecturally correct next PC (following the
    /// *actual* branch direction, not the predicted one).
    ///
    /// This is the single commit point shared by the functional and
    /// cycle engines.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] on wild data accesses.
    pub fn execute(&mut self, d: &Decoded) -> Result<Step, SimError> {
        let mut mem_write = None;
        match d.exec {
            ExecOp::Nop => {}
            ExecOp::Halt => {
                self.halted = true;
                self.pc = d.pc;
                return Ok(Step {
                    next_pc: d.pc,
                    taken: None,
                    mem_write: None,
                    halted: true,
                });
            }
            ExecOp::Op2 { op, dst, src } => {
                let b = self.read_operand(src)?;
                let value = if op == BinOp::Mov {
                    b
                } else {
                    let a = self.read_operand(dst)?;
                    op.eval(a, b)
                };
                mem_write = self.write_operand(dst, value)?;
            }
            ExecOp::Op3 { op, a, b } => {
                let av = self.read_operand(a)?;
                let bv = self.read_operand(b)?;
                self.accum = op.eval(av, bv);
            }
            ExecOp::Cmp { cond, a, b } => {
                let av = self.read_operand(a)?;
                let bv = self.read_operand(b)?;
                self.psw.flag = cond.eval(av, bv);
            }
            ExecOp::Enter { bytes } => self.sp = self.sp.wrapping_sub(bytes),
            ExecOp::Leave { bytes } => self.sp = self.sp.wrapping_add(bytes),
            ExecOp::CallPush { ret } => {
                self.sp = self.sp.wrapping_sub(4);
                self.mem.write_word(self.sp, ret as i32)?;
                mem_write = Some((self.sp & !3, ret as i32));
            }
            ExecOp::RetPop => {
                // Target is read before the pop; resolve_next compensates.
                self.sp = self.sp.wrapping_add(4);
            }
        }

        let (next_pc, taken) = match d.fold {
            FoldClass::Sequential | FoldClass::Uncond => (self.resolve_next(d.next_pc)?, None),
            FoldClass::Cond {
                on_true,
                predict_taken,
            } => {
                let taken = self.psw.flag == on_true;
                // Decoding always gives conditional entries an
                // alternate; only a corrupted entry (soft_error) lacks
                // one, and then both paths collapse onto Next-PC.
                let chosen = if taken == predict_taken {
                    d.next_pc
                } else {
                    d.alt_pc.unwrap_or(d.next_pc)
                };
                (self.resolve_next(chosen)?, Some(taken))
            }
        };
        self.pc = next_pc;
        Ok(Step {
            next_pc,
            taken,
            mem_write,
            halted: false,
        })
    }

    /// [`Machine::execute`] plus retirement events: emits
    /// [`PipeEvent::Issue`] and [`PipeEvent::Commit`] for the entry
    /// (and [`PipeEvent::Halt`] / [`PipeEvent::BranchRetire`] as
    /// applicable) at `cycle`. Both engines retire through this method
    /// so observers see an identical commit stream; with
    /// [`crate::NullObserver`] it compiles to exactly `execute`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::execute`].
    pub fn execute_observed<O: PipeObserver>(
        &mut self,
        d: &Decoded,
        cycle: u64,
        obs: &mut O,
    ) -> Result<Step, SimError> {
        let step = self.execute(d)?;
        if O::ENABLED {
            obs.event(PipeEvent::Issue {
                cycle,
                pc: d.pc,
                folded: d.folded,
            });
            obs.event(PipeEvent::Commit {
                cycle,
                pc: d.pc,
                next_pc: step.next_pc,
                branch_pc: d.branch_pc,
                folded: d.folded,
                taken: step.taken,
                accum: self.accum,
                sp: self.sp,
                flag: self.psw.flag,
                mem_write: step.mem_write,
                halted: step.halted,
            });
            if step.halted {
                obs.event(PipeEvent::Halt { cycle });
            }
            if let (Some(taken), FoldClass::Cond { predict_taken, .. }) = (step.taken, d.fold) {
                obs.event(PipeEvent::BranchRetire {
                    cycle,
                    branch_pc: d.branch_pc.unwrap_or(d.pc),
                    taken,
                    predicted: predict_taken,
                    folded: d.folded,
                });
            }
        }
        Ok(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_asm::assemble_text;
    use crisp_isa::{decode_and_fold, FoldPolicy};

    fn machine_with(src: &str) -> Machine {
        Machine::load(&assemble_text(src).unwrap()).unwrap()
    }

    fn entry(m: &Machine, pc: u32) -> Decoded {
        let window = m.mem.parcel_window(pc, 10);
        decode_and_fold(&window, 0, pc, FoldPolicy::Host13).unwrap()
    }

    #[test]
    fn loads_image() {
        let m = machine_with("mov 0(sp),$5\nhalt");
        assert_eq!(m.pc, 0);
        assert!(!m.halted);
        assert_eq!(m.sp, Image::DEFAULT_STACK_TOP);
    }

    #[test]
    fn op2_reads_and_writes_stack() {
        let mut m = machine_with("add 0(sp),$3\nhalt");
        m.mem.write_word(m.sp, 10).unwrap();
        let d = entry(&m, 0);
        let step = m.execute(&d).unwrap();
        assert_eq!(m.mem.read_word(m.sp).unwrap(), 13);
        assert_eq!(step.next_pc, 2);
        assert_eq!(step.taken, None);
    }

    #[test]
    fn cmp_sets_flag_and_cond_branch_follows_it() {
        let mut m = machine_with(
            "
            cmp.= Accum,$0
            ifjmpy.t .+10
            halt
            ",
        );
        // Accum starts 0, so flag becomes true and the fold (cmp hosts
        // the branch) follows the taken path.
        let d = entry(&m, 0);
        assert!(d.folded);
        let step = m.execute(&d).unwrap();
        assert!(m.psw.flag);
        assert_eq!(step.taken, Some(true));
        assert_eq!(step.next_pc, 2 + 10);
    }

    #[test]
    fn mispredicted_direction_still_architecturally_correct() {
        let mut m = machine_with(
            "
            cmp.= Accum,$1
            ifjmpy.t .+10
            halt
            ",
        );
        // Accum is 0 ≠ 1: flag false, branch (on_true) not taken even
        // though predicted taken.
        let d = entry(&m, 0);
        let step = m.execute(&d).unwrap();
        assert_eq!(step.taken, Some(false));
        assert_eq!(step.next_pc, 4); // fall-through past cmp(1)+branch(1)
    }

    #[test]
    fn call_pushes_and_ret_pops() {
        let mut m = machine_with(
            "
            call f
            halt
            f: ret
            ",
        );
        let sp0 = m.sp;
        let d = entry(&m, 0);
        let step = m.execute(&d).unwrap();
        assert_eq!(m.sp, sp0 - 4);
        assert_eq!(m.mem.read_word(m.sp).unwrap(), 2); // return address
        let f = step.next_pc;
        let d = entry(&m, f);
        let step = m.execute(&d).unwrap();
        assert_eq!(m.sp, sp0);
        assert_eq!(step.next_pc, 2); // back to the halt
    }

    #[test]
    fn enter_leave_move_sp() {
        let mut m = machine_with("enter 16\nleave 16\nhalt");
        let sp0 = m.sp;
        let d = entry(&m, 0);
        m.execute(&d).unwrap();
        assert_eq!(m.sp, sp0 - 16);
        let d = entry(&m, 2);
        m.execute(&d).unwrap();
        assert_eq!(m.sp, sp0);
    }

    #[test]
    fn halt_stops() {
        let mut m = machine_with("halt");
        let d = entry(&m, 0);
        let step = m.execute(&d).unwrap();
        assert!(step.halted);
        assert!(m.halted);
    }

    #[test]
    fn indirect_jump_through_memory() {
        let mut m = machine_with("jmp *0x10000\nhalt");
        m.mem.write_word(0x10000, 0x42).unwrap();
        let d = entry(&m, 0);
        let step = m.execute(&d).unwrap();
        assert_eq!(step.next_pc, 0x42);
    }

    #[test]
    fn indirect_jump_through_stack() {
        let mut m = machine_with("jmp *8(sp)\nhalt");
        let sp = m.sp;
        m.mem.write_word(sp + 8, 0x64).unwrap();
        let d = entry(&m, 0);
        let step = m.execute(&d).unwrap();
        assert_eq!(step.next_pc, 0x64);
    }

    #[test]
    fn spind_operands() {
        let mut m = machine_with("mov [0(sp)],$9\nhalt");
        let sp = m.sp;
        m.mem.write_word(sp, 0x11000).unwrap(); // pointer
        let d = entry(&m, 0);
        m.execute(&d).unwrap();
        assert_eq!(m.mem.read_word(0x11000).unwrap(), 9);
    }

    #[test]
    fn reset_from_matches_fresh_load() {
        let img_a = assemble_text("mov 0(sp),$5\nhalt").unwrap();
        let img_b = assemble_text("enter 8\nleave 8\nhalt").unwrap();
        let mut m = Machine::load(&img_a).unwrap();
        // Dirty every piece of state before resetting.
        let d = entry(&m, 0);
        m.execute(&d).unwrap();
        m.accum = 77;
        m.psw.flag = true;
        m.mem.write_word(0x11000, 123).unwrap();
        m.reset_from(&img_b).unwrap();
        assert_eq!(m, Machine::load(&img_b).unwrap());
        m.reset_from(&img_a).unwrap();
        assert_eq!(m, Machine::load(&img_a).unwrap());
    }

    #[test]
    fn text_bounds_recorded() {
        let img = assemble_text("enter 8\nhalt").unwrap();
        let m = Machine::load(&img).unwrap();
        assert_eq!(m.text_base(), img.code_base);
        assert_eq!(m.text_end(), img.code_base + img.parcels.len() as u32 * 2);
    }

    #[test]
    fn image_too_large_detected() {
        let img = assemble_text("halt").unwrap();
        let e = Machine::with_memory(&img, 16).unwrap_err();
        assert!(matches!(e, SimError::ImageTooLarge { .. }));
    }

    #[test]
    fn cmp_is_only_flag_writer() {
        let mut m = machine_with("cmp.= Accum,$0\nadd 0(sp),$1\nhalt");
        let d = entry(&m, 0);
        m.execute(&d).unwrap();
        assert!(m.psw.flag);
        // An add must not clear it.
        let d = entry(&m, 2);
        m.execute(&d).unwrap();
        assert!(m.psw.flag);
    }
}

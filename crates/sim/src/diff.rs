//! Differential co-simulation: a lockstep functional-vs-cycle oracle.
//!
//! The two engines share one architectural core ([`Machine::execute`]),
//! but the cycle engine wraps it in speculation: wrong-path slots,
//! squash windows, mispredict redirects, cache-conflict refetches. A
//! whole class of pipeline bugs — a missed squash, a stale Alternate
//! Next-PC, a double retire — corrupts architectural state in ways an
//! end-of-run result check can miss, because later correct-path writes
//! can overwrite the damage. The oracle here compares the engines
//! *commit by commit* instead: both emit [`PipeEvent::Commit`] through
//! the shared commit point ([`Machine::execute_observed`]), and
//! [`run_lockstep`] co-steps the functional engine one retirement at a
//! time against the cycle engine's commit stream, reporting the first
//! divergent commit together with a pipeline-timeline excerpt of the
//! cycles around it.
//!
//! The harness is validated by fault injection: configuring
//! [`crate::FaultInjection::SkipOrSquash`] makes the cycle engine skip
//! one squash during folded-compare mispredict recovery, and the oracle
//! must catch the wrong-path commit (a unit test here and the
//! `diff_oracle` integration test both insist on it).

use std::sync::Arc;

use crisp_isa::FoldPolicy;

use crate::batch::{LaneEnd, MachineBatch, MachinePool};
use crate::config::HwPredictor;
use crate::observe::{render_timeline_for, EventRing, PipeEvent, PipeObserver};
use crate::predecode::PredecodedImage;
use crate::{CycleSim, FunctionalSim, HaltReason, Machine, SimConfig, SimError};
use crisp_asm::Image;

/// Events of pipeline context retained for the divergence excerpt.
const TIMELINE_RING: usize = 4096;
/// Cycles of context rendered before the divergent commit.
const EXCERPT_BEFORE: u64 = 8;
/// Cycles of context rendered after the divergent commit.
const EXCERPT_AFTER: u64 = 3;
/// How many commits past the cycle engine's error the functional
/// reference may run before the engines are declared divergent. The
/// cycle engine's fetch/decode errors fire up to a full pipeline ahead
/// of retirement, so the reference legitimately commits the few slots
/// still in flight before reaching the same error.
const ERROR_CHASE: usize = 8;

/// The architectural effects of one retired entry, as reported through
/// [`PipeEvent::Commit`].
///
/// Deliberately excludes the clock: the cycle engine stamps commits
/// with cycle numbers and the functional engine with step indices, so
/// the clock lives in [`CommitLog::cycles`] instead and records from
/// the two engines compare equal exactly when the architectural
/// history matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Address of the (host) entry that committed.
    pub pc: u32,
    /// The architecturally correct next PC.
    pub next_pc: u32,
    /// Address of the branch the entry carried, if any.
    pub branch_pc: Option<u32>,
    /// Whether the entry carried a folded branch.
    pub folded: bool,
    /// For conditional entries, the actual direction taken.
    pub taken: Option<bool>,
    /// Accumulator after the commit.
    pub accum: i32,
    /// Stack pointer after the commit.
    pub sp: u32,
    /// PSW condition flag after the commit.
    pub flag: bool,
    /// The memory word written (word-aligned address, value), if any.
    pub mem_write: Option<(u32, i32)>,
    /// Whether this commit was a `halt`.
    pub halted: bool,
}

impl CommitRecord {
    fn from_event(ev: &PipeEvent) -> Option<(u64, CommitRecord)> {
        match *ev {
            PipeEvent::Commit {
                cycle,
                pc,
                next_pc,
                branch_pc,
                folded,
                taken,
                accum,
                sp,
                flag,
                mem_write,
                halted,
            } => Some((
                cycle,
                CommitRecord {
                    pc,
                    next_pc,
                    branch_pc,
                    folded,
                    taken,
                    accum,
                    sp,
                    flag,
                    mem_write,
                    halted,
                },
            )),
            _ => None,
        }
    }
}

/// A [`PipeObserver`] that captures the commit stream: one
/// [`CommitRecord`] per retired entry, in retirement order, with the
/// clock each record retired on kept in a parallel vector (see
/// [`CommitRecord`] for why the clock is split out). All other events
/// pass through untouched, so it composes with any sibling observer in
/// a tuple.
#[derive(Debug, Default, Clone)]
pub struct CommitLog {
    /// Per-commit architectural records.
    pub records: Vec<CommitRecord>,
    /// The cycle (cycle engine) or step index (functional engine) each
    /// record retired on; `cycles[i]` pairs with `records[i]`.
    pub cycles: Vec<u64>,
}

impl PipeObserver for CommitLog {
    #[inline]
    fn event(&mut self, ev: PipeEvent) {
        if let Some((cycle, rec)) = CommitRecord::from_event(&ev) {
            self.cycles.push(cycle);
            self.records.push(rec);
        }
    }
}

/// Why the two engines disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The engines retired different architectural state at the same
    /// commit index.
    Mismatch {
        /// What the functional reference committed.
        functional: CommitRecord,
        /// What the cycle engine committed.
        cycle: CommitRecord,
    },
    /// The cycle engine committed after the functional engine halted —
    /// a wrong-path slot escaped its squash.
    ExtraCommit {
        /// The surplus cycle-engine commit.
        cycle: CommitRecord,
    },
    /// One engine raised an error the other did not, or their errors
    /// disagree. (`None` means that engine was still running cleanly.)
    Error {
        /// The functional engine's error, if any.
        functional: Option<SimError>,
        /// The cycle engine's error, if any.
        cycle: Option<SimError>,
    },
    /// Every commit matched but the final machine state did not — a
    /// write both engines failed to report (belt and braces over the
    /// per-commit comparison).
    FinalState,
    /// The cycle engine hit its watchdog limit
    /// ([`SimConfig::max_cycles`] / [`SimConfig::max_insns`]) before
    /// halting — the oracle cannot tell agreement from a hang.
    Watchdog {
        /// The commits that did match before the limit expired.
        commits: u64,
    },
}

/// The first point where the two engines disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into the commit stream (0-based) of the divergent commit;
    /// all earlier commits matched.
    pub commit_index: usize,
    /// Cycle-engine clock at the divergence.
    pub cycle: u64,
    /// What disagreed.
    pub kind: DivergenceKind,
    /// A pipeline-timeline excerpt (see
    /// [`crate::observe::render_timeline`]) of the cycles around the
    /// divergence.
    pub timeline: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "first divergence at commit #{} (cycle {}):",
            self.commit_index, self.cycle
        )?;
        match &self.kind {
            DivergenceKind::Mismatch { functional, cycle } => {
                writeln!(f, "  functional: {functional:?}")?;
                writeln!(f, "  cycle:      {cycle:?}")?;
            }
            DivergenceKind::ExtraCommit { cycle } => {
                writeln!(
                    f,
                    "  cycle engine committed after the functional engine halted: {cycle:?}"
                )?;
            }
            DivergenceKind::Error { functional, cycle } => {
                writeln!(f, "  functional error: {functional:?}")?;
                writeln!(f, "  cycle error:      {cycle:?}")?;
            }
            DivergenceKind::FinalState => {
                writeln!(f, "  commit streams match but final machine state differs")?;
            }
            DivergenceKind::Watchdog { commits } => {
                writeln!(
                    f,
                    "  watchdog limit expired after {commits} matching commits (no halt)"
                )?;
            }
        }
        write!(f, "{}", self.timeline)
    }
}

/// The verdict of one [`run_lockstep`] call.
#[derive(Debug, Clone)]
pub enum LockstepOutcome {
    /// The engines agreed on every commit and on the final state.
    /// (Programs on which both engines raise the *same* error also
    /// land here: the engines agree the program is faulty.)
    Agree {
        /// Retired entries compared.
        commits: u64,
        /// Cycle-engine clock at the end of the run.
        cycles: u64,
    },
    /// The engines disagreed; the payload pinpoints the first
    /// divergent commit.
    Diverge(Box<Divergence>),
}

impl LockstepOutcome {
    /// Whether the engines agreed.
    pub fn is_agree(&self) -> bool {
        matches!(self, LockstepOutcome::Agree { .. })
    }

    /// The divergence, if any.
    pub fn divergence(&self) -> Option<&Divergence> {
        match self {
            LockstepOutcome::Agree { .. } => None,
            LockstepOutcome::Diverge(d) => Some(d),
        }
    }
}

/// The configuration grid the differential harness sweeps: every
/// [`FoldPolicy`] × decoded-cache size × hardware-prediction mode. The
/// small cache forces conflict evictions and refetch-replay paths; the
/// dynamic predictors exercise guess-direction swaps the static bit
/// never takes — every [`HwPredictor`] variant is represented (tiny
/// BTB/jump-trace geometries, so eviction and capacity paths fire on
/// short programs).
pub fn sweep_configs() -> Vec<SimConfig> {
    let mut out = Vec::new();
    for fold_policy in [
        FoldPolicy::None,
        FoldPolicy::Host1,
        FoldPolicy::Host13,
        FoldPolicy::All,
    ] {
        for icache_entries in [8usize, 32] {
            for predictor in [
                HwPredictor::StaticBit,
                HwPredictor::Dynamic {
                    bits: 2,
                    entries: 64,
                },
                HwPredictor::Btb {
                    entries: 8,
                    ways: 2,
                },
                HwPredictor::JumpTrace { entries: 8 },
            ] {
                out.push(SimConfig {
                    fold_policy,
                    icache_entries,
                    predictor,
                    ..SimConfig::default()
                });
            }
        }
    }
    out
}

fn diverge(
    cyc: &CycleSim<(CommitLog, EventRing)>,
    commit_index: usize,
    at_cycle: u64,
    kind: DivergenceKind,
) -> LockstepOutcome {
    let events: Vec<PipeEvent> = cyc.observer().1.events().copied().collect();
    let from = at_cycle.saturating_sub(EXCERPT_BEFORE);
    let timeline = render_timeline_for(&events, from, at_cycle + EXCERPT_AFTER, cyc.geometry());
    LockstepOutcome::Diverge(Box::new(Divergence {
        commit_index,
        cycle: at_cycle,
        kind,
        timeline,
    }))
}

/// Run both engines over `image` in lockstep under `cfg`, comparing
/// commit streams, and report the first divergence (or agreement).
///
/// The cycle engine is clocked one cycle at a time; each retirement it
/// produces advances the functional reference by exactly one step, and
/// the two [`CommitRecord`]s must match. The comparison is therefore
/// *incremental* — the run stops at the first divergent commit, with
/// the pipeline context still in the event ring for the excerpt.
///
/// # Errors
///
/// Only harness-level failures (the image does not load) are `Err`;
/// every behavioural disagreement — including one engine erroring where
/// the other ran on — is reported as [`LockstepOutcome::Diverge`].
pub fn run_lockstep(image: &Image, cfg: SimConfig) -> Result<LockstepOutcome, SimError> {
    run_lockstep_pooled(image, cfg, None, &mut LockstepBuffers::default())
}

/// Reusable per-worker state for [`run_lockstep_pooled`]: the two
/// engines' `Machine` buffers, recycled across cases via
/// [`Machine::reset_from`] so a million-case campaign performs two
/// memory allocations per worker instead of two per case.
#[derive(Debug, Default)]
pub struct LockstepBuffers {
    pub(crate) func: Option<Machine>,
    pub(crate) cycle: Option<Machine>,
}

pub(crate) fn reset_or_load(buf: Option<Machine>, image: &Image) -> Result<Machine, SimError> {
    match buf {
        // `reset_from` is bit-identical to a fresh load (including the
        // memory size), so pooled and unpooled runs cannot diverge.
        Some(mut m) => {
            m.reset_from(image)?;
            Ok(m)
        }
        None => Machine::load(image),
    }
}

/// [`run_lockstep`] with the campaign fast paths: `predecoded` (when
/// given) serves both engines' decode work from a shared table, and
/// `bufs` recycles the machine buffers across calls.
///
/// # Errors
///
/// Same conditions as [`run_lockstep`].
///
/// # Panics
///
/// If `predecoded` was built under a fold policy different from
/// `cfg.fold_policy` — the table would silently answer for the wrong
/// policy.
pub fn run_lockstep_pooled(
    image: &Image,
    cfg: SimConfig,
    predecoded: Option<&Arc<PredecodedImage>>,
    bufs: &mut LockstepBuffers,
) -> Result<LockstepOutcome, SimError> {
    cfg.validate();
    if let Some(t) = predecoded {
        assert_eq!(
            t.policy(),
            cfg.fold_policy,
            "predecode table policy must match the swept config"
        );
    }
    let fmach = reset_or_load(bufs.func.take(), image)?;
    let cmach = reset_or_load(bufs.cycle.take(), image)?;
    let mut func = match predecoded {
        Some(t) => FunctionalSim::with_predecoded(fmach, Arc::clone(t)),
        None => FunctionalSim::with_policy(fmach, cfg.fold_policy),
    };
    let mut cyc = CycleSim::with_observer(
        cmach,
        cfg,
        (CommitLog::default(), EventRing::new(TIMELINE_RING)),
    );
    if let Some(t) = predecoded {
        cyc.set_predecoded(Arc::clone(t));
    }
    let outcome = lockstep_loop(&mut func, &mut cyc, &cfg);
    bufs.func = Some(func.into_machine());
    bufs.cycle = Some(cyc.into_machine());
    Ok(outcome)
}

fn lockstep_loop(
    func: &mut FunctionalSim,
    cyc: &mut CycleSim<(CommitLog, EventRing)>,
    cfg: &SimConfig,
) -> LockstepOutcome {
    let mut flog = CommitLog::default();
    let mut compared = 0usize;
    let mut func_halted = false;

    loop {
        if cyc.stats.cycles >= cfg.max_cycles
            || cfg
                .max_insns
                .is_some_and(|limit| cyc.stats.program_instrs >= limit)
        {
            let at = cyc.stats.cycles;
            return diverge(
                cyc,
                compared,
                at,
                DivergenceKind::Watchdog {
                    commits: compared as u64,
                },
            );
        }
        let step_result = cyc.step();

        // Drain the cycle engine's newly retired commits, co-stepping
        // the functional reference one commit per record.
        while compared < cyc.observer().0.records.len() {
            let crec = cyc.observer().0.records[compared];
            let at = cyc.observer().0.cycles[compared];
            if func_halted {
                return diverge(
                    cyc,
                    compared,
                    at,
                    DivergenceKind::ExtraCommit { cycle: crec },
                );
            }
            let frec = match func.step_observed(compared as u64, &mut flog) {
                Ok(_) => *flog.records.last().expect("step_observed emits a commit"),
                Err(e) => {
                    return diverge(
                        cyc,
                        compared,
                        at,
                        DivergenceKind::Error {
                            functional: Some(e),
                            cycle: None,
                        },
                    );
                }
            };
            if frec != crec {
                return diverge(
                    cyc,
                    compared,
                    at,
                    DivergenceKind::Mismatch {
                        functional: frec,
                        cycle: crec,
                    },
                );
            }
            func_halted = frec.halted;
            compared += 1;
        }

        match step_result {
            Ok(snap) => {
                if snap.halted {
                    break;
                }
            }
            Err(cycle_err) => {
                // Agreement requires the functional engine to reach the
                // same error within the in-flight window (the cycle
                // engine aborted before the slots behind the error
                // retired, so the reference may owe a few commits).
                let mut func_err = None;
                if !func_halted {
                    for chase in 0..ERROR_CHASE {
                        match func.step_observed((compared + chase) as u64, &mut flog) {
                            Ok(step) => {
                                if step.halted {
                                    break;
                                }
                            }
                            Err(e) => {
                                func_err = Some(e);
                                break;
                            }
                        }
                    }
                }
                if func_err.as_ref() == Some(&cycle_err) {
                    return LockstepOutcome::Agree {
                        commits: compared as u64,
                        cycles: cyc.stats.cycles,
                    };
                }
                let at = cyc.stats.cycles;
                return diverge(
                    cyc,
                    compared,
                    at,
                    DivergenceKind::Error {
                        functional: func_err,
                        cycle: Some(cycle_err),
                    },
                );
            }
        }
    }

    // Streams matched all the way to halt (the final records carried
    // halted = true on both sides, so the functional engine stopped at
    // the same commit). Belt and braces: the complete architectural
    // state must agree too, catching any write neither engine reported.
    let (fm, cm) = (func.machine(), cyc.machine());
    if fm.accum != cm.accum
        || fm.sp != cm.sp
        || fm.psw.flag != cm.psw.flag
        || fm.halted != cm.halted
        || fm.mem != cm.mem
    {
        let at = cyc.stats.cycles;
        return diverge(cyc, compared, at, DivergenceKind::FinalState);
    }
    LockstepOutcome::Agree {
        commits: compared as u64,
        cycles: cyc.stats.cycles,
    }
}

/// An online commit-stream comparator: checks each commit a cycle
/// engine retires against a precomputed reference [`CommitLog`], in
/// retirement order, without storing the stream.
///
/// This is the batched campaign kernels' observer. Where the scalar
/// harnesses either co-step a live functional engine
/// ([`run_lockstep`]) or buffer the whole faulted stream for a
/// post-hoc comparison ([`crate::classify_fault`]), batched lanes
/// share one reference log per (image, fold policy) and each lane
/// carries only a cursor into it — no per-lane log allocation — and
/// the driver polls [`PrefixCheck::decided`] between waves to eject a
/// lane whose verdict is already fixed.
#[derive(Debug, Clone)]
pub struct PrefixCheck {
    reference: Arc<CommitLog>,
    /// Leading commits that matched the reference.
    matched: usize,
    /// The first divergent (reference, observed) pair, if any.
    mismatch: Option<(CommitRecord, CommitRecord)>,
    /// Commits observed beyond the end of the reference stream.
    extra: u64,
}

impl PrefixCheck {
    /// A fresh cursor over `reference`.
    pub fn new(reference: Arc<CommitLog>) -> PrefixCheck {
        PrefixCheck {
            reference,
            matched: 0,
            mismatch: None,
            extra: 0,
        }
    }

    /// Leading commits that matched the reference stream.
    pub fn matched(&self) -> usize {
        self.matched
    }

    /// The first divergent (reference, observed) record pair, if the
    /// prefix has diverged.
    pub fn mismatch(&self) -> Option<&(CommitRecord, CommitRecord)> {
        self.mismatch.as_ref()
    }

    /// Commits retired past the end of the reference stream (with the
    /// whole reference matched).
    pub fn extra(&self) -> u64 {
        self.extra
    }

    /// Whether the verdict is already fixed no matter how the run
    /// ends: the prefix has diverged, so later commits can only follow
    /// the wrong path. Length differences do *not* decide — a short,
    /// long or stalled stream still distinguishes hang from halt by
    /// how the run ends.
    pub fn decided(&self) -> bool {
        self.mismatch.is_some()
    }

    /// Whether the observed stream reproduced the reference exactly:
    /// every reference commit matched, none diverged, none were extra.
    pub fn full_match(&self) -> bool {
        self.mismatch.is_none() && self.extra == 0 && self.matched == self.reference.records.len()
    }
}

impl PipeObserver for PrefixCheck {
    #[inline]
    fn event(&mut self, ev: PipeEvent) {
        let Some((_, rec)) = CommitRecord::from_event(&ev) else {
            return;
        };
        if self.mismatch.is_some() {
            return;
        }
        match self.reference.records.get(self.matched) {
            None => self.extra += 1,
            Some(r) if *r == rec => self.matched += 1,
            Some(r) => self.mismatch = Some((*r, rec)),
        }
    }
}

/// The functional engine's complete run over one (image, fold policy):
/// the commit stream plus — when the run halted cleanly — the final
/// architectural state. One reference serves every configuration of a
/// batched lockstep sweep under that policy, where the scalar harness
/// re-steps the functional engine once per configuration.
#[derive(Debug)]
pub struct DiffReference {
    log: Arc<CommitLog>,
    /// `Some` only when the reference halted within the step budget.
    machine: Option<Machine>,
}

impl DiffReference {
    /// Whether the reference ran to a clean halt. Batched lanes can
    /// only agree against a clean reference; an unclean one (error or
    /// step-budget expiry) sends every configuration down the scalar
    /// fallback, which reproduces the error-chase and watchdog
    /// reporting exactly.
    pub fn clean(&self) -> bool {
        self.machine.is_some()
    }

    /// The reference commit stream.
    pub fn log(&self) -> &Arc<CommitLog> {
        &self.log
    }
}

/// Precompute the functional side of a lockstep sweep: run the
/// reference once to completion and capture its commit stream.
///
/// `max_steps` bounds the run; pass the sweep's `max_cycles` — the
/// cycle engine retires at most one entry per cycle, so a cycle run
/// inside its watchdog can never need more reference steps than that.
/// A reference that errors or exhausts the budget is still returned,
/// just not [`DiffReference::clean`].
///
/// # Errors
///
/// Image-load failures only.
pub fn diff_reference(
    image: &Image,
    fold_policy: FoldPolicy,
    max_steps: u64,
    predecoded: Option<&Arc<PredecodedImage>>,
    pool: &mut MachinePool,
) -> Result<DiffReference, SimError> {
    if let Some(t) = predecoded {
        assert_eq!(
            t.policy(),
            fold_policy,
            "predecode table policy must match the reference policy"
        );
    }
    let machine = pool.take(image)?;
    let mut log = CommitLog::default();
    let run = match predecoded {
        Some(t) => FunctionalSim::with_predecoded(machine, Arc::clone(t)),
        None => FunctionalSim::with_policy(machine, fold_policy),
    }
    .max_steps(max_steps)
    .run_observed(&mut log);
    let machine = match run {
        Ok(run) if run.halt_reason == HaltReason::Halted => Some(run.machine),
        Ok(run) => {
            pool.put(run.machine);
            None
        }
        // The reference died mid-run (its machine is consumed); the
        // scalar fallback will chase the same error per configuration.
        Err(_) => None,
    };
    Ok(DiffReference {
        log: Arc::new(log),
        machine,
    })
}

/// Batched variant of [`run_lockstep_pooled`]: run `cfgs` (all sharing
/// `reference`'s fold policy) as SoA cycle-engine lanes against one
/// precomputed functional reference, `lanes` at a time, refilling each
/// slot as its lane drains.
///
/// A lane that matches the whole reference stream, halts, and
/// reproduces the reference's final state reports
/// [`LockstepOutcome::Agree`] with exactly the counts the scalar
/// harness computes. Every other lane — a mismatched commit (the lane
/// is ejected the wave the mismatch retires), an engine error, a
/// watchdog expiry, a stream-length difference, a final-state
/// difference, or an unclean reference — is re-run through the scalar
/// [`run_lockstep_pooled`] harness, which reproduces the divergence
/// report (timeline excerpt included) bit-identically to a
/// scalar-only sweep. Campaigns abort on the first divergence, so the
/// double-run costs nothing on the steady-state path.
///
/// # Errors
///
/// Image-load failures only, as in [`run_lockstep`].
///
/// # Panics
///
/// If a config's fold policy differs from the reference table's
/// policy, or a config fails [`SimConfig::validate`].
pub fn run_lockstep_batched(
    image: &Image,
    cfgs: &[SimConfig],
    predecoded: Option<&Arc<PredecodedImage>>,
    reference: &DiffReference,
    lanes: usize,
    pool: &mut MachinePool,
    bufs: &mut LockstepBuffers,
) -> Result<Vec<LockstepOutcome>, SimError> {
    let mut outcomes: Vec<Option<LockstepOutcome>> = (0..cfgs.len()).map(|_| None).collect();
    let mut rerun: Vec<usize> = Vec::new();
    match &reference.machine {
        None => rerun.extend(0..cfgs.len()),
        Some(ref_machine) => {
            let mut batch: MachineBatch<PrefixCheck> =
                MachineBatch::new(lanes.clamp(1, cfgs.len().max(1)));
            let mut next = 0usize;
            loop {
                while next < cfgs.len() && batch.free_lane().is_some() {
                    let cfg = cfgs[next];
                    cfg.validate();
                    if let Some(t) = predecoded {
                        assert_eq!(
                            t.policy(),
                            cfg.fold_policy,
                            "predecode table policy must match the swept config"
                        );
                    }
                    let mut sim = CycleSim::with_observer(
                        pool.take(image)?,
                        cfg,
                        PrefixCheck::new(Arc::clone(&reference.log)),
                    );
                    if let Some(t) = predecoded {
                        sim.set_predecoded(Arc::clone(t));
                    }
                    batch.admit(next as u64, sim);
                    next += 1;
                }
                if batch.live_lanes() == 0 {
                    break;
                }
                batch.step_wave();
                for lane in 0..batch.lanes() {
                    if batch.is_live(lane) && batch.observer(lane).decided() {
                        batch.eject(lane);
                    }
                }
                for fin in batch.drain_finished() {
                    let idx = fin.tag as usize;
                    let fm = ref_machine;
                    let cm = &fin.machine;
                    let agree = matches!(fin.end, LaneEnd::Halted)
                        && fin.obs.full_match()
                        && fm.accum == cm.accum
                        && fm.sp == cm.sp
                        && fm.psw.flag == cm.psw.flag
                        && fm.halted == cm.halted
                        && fm.mem == cm.mem;
                    if agree {
                        outcomes[idx] = Some(LockstepOutcome::Agree {
                            commits: fin.obs.matched() as u64,
                            cycles: fin.stats.cycles,
                        });
                    } else {
                        rerun.push(idx);
                    }
                    pool.put(fin.machine);
                }
            }
        }
    }
    for idx in rerun {
        outcomes[idx] = Some(run_lockstep_pooled(image, cfgs[idx], predecoded, bufs)?);
    }
    Ok(outcomes
        .into_iter()
        .map(|o| o.expect("every config ran as a lane or a scalar fallback"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultInjection;
    use crate::observe::NullObserver;
    use crisp_asm::assemble_text;

    fn image(src: &str) -> Image {
        assemble_text(src).unwrap()
    }

    #[test]
    fn lockstep_agrees_across_the_whole_sweep() {
        let img = image(
            "
                mov 0(sp),$0
                mov 4(sp),$0
            top:
                add 4(sp),0(sp)
                cmp.= Accum,$3
                ifjmpy.nt keep
                mov 8(sp),4(sp)
            keep:
                add 0(sp),$1
                cmp.s< 0(sp),$20
                ifjmpy.t top
                halt
            ",
        );
        for cfg in sweep_configs() {
            let out = run_lockstep(&img, cfg).unwrap();
            match out {
                LockstepOutcome::Agree { commits, cycles } => {
                    assert!(commits > 20, "{commits} commits under {cfg:?}");
                    assert!(cycles >= commits);
                }
                LockstepOutcome::Diverge(d) => panic!("diverged under {cfg:?}:\n{d}"),
            }
        }
    }

    #[test]
    fn pooled_lockstep_matches_fresh_runs() {
        // Shared tables + recycled machine buffers are pure work-savers:
        // the outcome of every swept config must match the unpooled
        // oracle, including across different images through the same
        // buffers.
        let images = [
            image(
                "
                    mov 0(sp),$0
                top:
                    add 0(sp),$1
                    cmp.s< 0(sp),$9
                    ifjmpy.t top
                    halt
                ",
            ),
            image("call f\nhalt\nf: add 0(sp),$3\nret"),
        ];
        let mut bufs = LockstepBuffers::default();
        for img in &images {
            let tables: Vec<Arc<PredecodedImage>> = [
                FoldPolicy::None,
                FoldPolicy::Host1,
                FoldPolicy::Host13,
                FoldPolicy::All,
            ]
            .iter()
            .map(|&p| PredecodedImage::shared(img, p).unwrap())
            .collect();
            for cfg in sweep_configs() {
                let table = tables
                    .iter()
                    .find(|t| t.policy() == cfg.fold_policy)
                    .unwrap();
                let fresh = run_lockstep(img, cfg).unwrap();
                let pooled = run_lockstep_pooled(img, cfg, Some(table), &mut bufs).unwrap();
                match (&fresh, &pooled) {
                    (
                        LockstepOutcome::Agree { commits, cycles },
                        LockstepOutcome::Agree {
                            commits: pc,
                            cycles: py,
                        },
                    ) => {
                        assert_eq!(commits, pc, "{cfg:?}");
                        assert_eq!(cycles, py, "{cfg:?}");
                    }
                    other => panic!("outcomes differ under {cfg:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn unaligned_operands_agree_and_record_masked_addresses() {
        // Satellite proof for the Memory alignment contract: unaligned
        // absolute operands round down identically in both engines, and
        // the commit stream records the *aligned* address.
        let img = image(
            "
                mov *0x10001,$5
                mov 0(sp),*0x10002
                halt
            ",
        );
        assert!(run_lockstep(&img, SimConfig::default()).unwrap().is_agree());
        let mut log = CommitLog::default();
        let machine = Machine::load(&img).unwrap();
        let mut f = FunctionalSim::new(machine);
        for i in 0..3 {
            f.step_observed(i, &mut log).unwrap();
        }
        assert_eq!(log.records[0].mem_write, Some((0x1_0000, 5)));
        assert_eq!(f.machine().mem.read_word(0x1_0003).unwrap(), 5);
    }

    #[test]
    fn injected_squash_skip_is_caught() {
        // Folded compare, mispredicted at RR: flag is true (Accum == 0)
        // and ifjmpn branches on false, so the predicted-taken branch
        // falls through. The wrong (taken) path stores 9; recovery must
        // squash it. With the squash skipped, that store commits — and
        // the oracle must report the wrong-path commit, not agreement.
        let src = "
            nop
            cmp.= Accum,$0
            ifjmpn.t over
            mov 0(sp),$7
            halt
        over:
            mov 0(sp),$9
            halt
        ";
        let img = image(src);
        let clean = run_lockstep(&img, SimConfig::default()).unwrap();
        assert!(
            clean.is_agree(),
            "{:?}",
            clean.divergence().map(|d| &d.kind)
        );

        let faulty_cfg = SimConfig {
            fault: Some(FaultInjection::SkipOrSquash),
            ..SimConfig::default()
        };
        let faulty = run_lockstep(&img, faulty_cfg).unwrap();
        let d = faulty.divergence().expect("oracle catches the fault");
        match &d.kind {
            DivergenceKind::Mismatch { functional, cycle } => {
                // The cycle engine committed the wrong-path store.
                assert_eq!(cycle.mem_write.map(|(_, v)| v), Some(9));
                assert_ne!(functional, cycle);
            }
            other => panic!("unexpected divergence kind: {other:?}"),
        }
        assert!(
            !d.timeline.is_empty(),
            "divergence report carries a timeline excerpt"
        );
        let shown = format!("{d}");
        assert!(shown.contains("first divergence at commit #"));
    }

    #[test]
    fn cycle_error_against_running_functional_is_a_divergence() {
        // A program whose true path decodes garbage errors identically
        // in both engines — that is agreement, not divergence.
        let img = image("jmp bad\nbad: .word 0x0000B800");
        let out = run_lockstep(&img, SimConfig::default()).unwrap();
        assert!(out.is_agree(), "{:?}", out.divergence().map(|d| &d.kind));
    }

    #[test]
    fn commit_log_ignores_other_events() {
        let mut log = CommitLog::default();
        log.event(PipeEvent::FetchMiss { cycle: 1, pc: 0 });
        assert!(log.records.is_empty());
        // And NullObserver remains zero-cost for lockstep-free runs.
        const { assert!(!NullObserver::ENABLED) };
    }
}

use crate::SimError;

/// Byte-addressable little-endian memory.
///
/// Data accesses are 32-bit words (addresses masked to 4-byte
/// alignment, as the hardware datapath would); instruction fetches read
/// 16-bit parcels (masked to 2-byte alignment).
///
/// # Unaligned accesses
///
/// An unaligned address is **silently rounded down** to the containing
/// aligned unit — `read_word(17)` and `read_word(19)` both access the
/// word at 16. This is a deliberate architectural choice, not an
/// accident: the modelled datapath has no byte-steering, so the low
/// address bits simply do not reach the memory array, and no
/// `Unaligned` fault exists. Both simulation engines go through this
/// one implementation, so they agree on the masking by construction —
/// and the differential oracle proves it dynamically: the random
/// program generator emits deliberately unaligned absolute operands
/// (see `crisp_asm::rand_prog`) and the lockstep commit comparison
/// (`run_lockstep`) requires both engines to observe identical
/// addresses and values for every such access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocate `size` bytes of zeroed memory.
    pub fn new(size: u32) -> Memory {
        Memory {
            bytes: vec![0; size as usize],
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, SimError> {
        let end = addr.checked_add(len).filter(|&e| e <= self.size());
        match end {
            Some(_) => Ok(addr as usize),
            None => Err(SimError::MemOutOfBounds {
                addr,
                size: self.size(),
            }),
        }
    }

    /// Read the 32-bit word at `addr`. The low two address bits are
    /// ignored (masked to the containing aligned word — see the type
    /// docs on unaligned accesses); no alignment fault is raised.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] when the word lies outside memory.
    #[inline]
    pub fn read_word(&self, addr: u32) -> Result<i32, SimError> {
        let a = (addr & !3) as usize;
        // Single bounds check; compiles to one aligned 32-bit load.
        match self.bytes.get(a..a + 4) {
            Some(w) => Ok(i32::from_le_bytes(w.try_into().expect("length 4"))),
            None => Err(SimError::MemOutOfBounds {
                addr,
                size: self.size(),
            }),
        }
    }

    /// Write the 32-bit word at `addr`. The low two address bits are
    /// ignored (masked to the containing aligned word — see the type
    /// docs on unaligned accesses); no alignment fault is raised.
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] when the word lies outside memory.
    #[inline]
    pub fn write_word(&mut self, addr: u32, value: i32) -> Result<(), SimError> {
        let a = (addr & !3) as usize;
        let size = self.size();
        match self.bytes.get_mut(a..a + 4) {
            Some(w) => {
                w.copy_from_slice(&value.to_le_bytes());
                Ok(())
            }
            None => Err(SimError::MemOutOfBounds { addr, size }),
        }
    }

    /// Read the 16-bit instruction parcel at `addr` (low bit ignored).
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] when the parcel lies outside memory.
    pub fn read_parcel(&self, addr: u32) -> Result<u16, SimError> {
        let a = self.check(addr & !1, 2)?;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Write the 16-bit parcel at `addr` (used by the loader).
    ///
    /// # Errors
    ///
    /// [`SimError::MemOutOfBounds`] when the parcel lies outside memory.
    pub fn write_parcel(&mut self, addr: u32, value: u16) -> Result<(), SimError> {
        let a = self.check(addr & !1, 2)?;
        self.bytes[a..a + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Read up to `max` consecutive parcels starting at `addr`, stopping
    /// at the end of memory. Used by decode paths that need a lookahead
    /// window.
    pub fn parcel_window(&self, addr: u32, max: usize) -> Vec<u16> {
        let mut out = vec![0u16; max];
        let n = self.parcel_window_into(addr, &mut out);
        out.truncate(n);
        out
    }

    /// Fill `buf` with consecutive parcels starting at `addr` and return
    /// how many were read (bounds-checked against the end of memory: the
    /// count is short exactly when the window runs off physical memory).
    ///
    /// This is the allocation-free form of [`Memory::parcel_window`]:
    /// decode paths pass a stack-allocated `[u16; N]` window instead of
    /// building a fresh `Vec` per miss. Memory is byte-addressed and
    /// little-endian, so parcels cannot be *borrowed* as a `&[u16]`
    /// without alignment games; a bounded copy into a caller-owned
    /// buffer is the sound equivalent.
    pub fn parcel_window_into(&self, addr: u32, buf: &mut [u16]) -> usize {
        let start = (addr & !1) as usize;
        if start >= self.bytes.len() {
            return 0;
        }
        let avail_parcels = (self.bytes.len() - start) / 2;
        let n = buf.len().min(avail_parcels);
        for (i, slot) in buf.iter_mut().take(n).enumerate() {
            let a = start + i * 2;
            *slot = u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]);
        }
        n
    }

    /// Zero the whole array in place, keeping the allocation — the reset
    /// path behind [`crate::Machine::reset_from`].
    pub fn zero(&mut self) {
        self.bytes.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip_little_endian() {
        let mut m = Memory::new(64);
        m.write_word(8, -1234).unwrap();
        assert_eq!(m.read_word(8).unwrap(), -1234);
        m.write_word(12, 0x1234_5678).unwrap();
        // Little-endian byte order: parcels see low half first.
        assert_eq!(m.read_parcel(12).unwrap(), 0x5678);
        assert_eq!(m.read_parcel(14).unwrap(), 0x1234);
    }

    #[test]
    fn alignment_masking() {
        let mut m = Memory::new(64);
        m.write_word(16, 42).unwrap();
        assert_eq!(m.read_word(17).unwrap(), 42);
        assert_eq!(m.read_word(19).unwrap(), 42);
        m.write_parcel(20, 7).unwrap();
        assert_eq!(m.read_parcel(21).unwrap(), 7);
    }

    #[test]
    fn bounds_checked() {
        let m = Memory::new(16);
        assert_eq!(m.read_word(12).unwrap(), 0);
        assert!(matches!(
            m.read_word(16),
            Err(SimError::MemOutOfBounds { .. })
        ));
        assert!(matches!(
            m.read_word(u32::MAX),
            Err(SimError::MemOutOfBounds { .. })
        ));
        assert!(matches!(
            m.read_parcel(16),
            Err(SimError::MemOutOfBounds { .. })
        ));
        let mut m = Memory::new(16);
        assert!(matches!(
            m.write_word(16, 0),
            Err(SimError::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn parcel_window_stops_at_end() {
        let mut m = Memory::new(8);
        for i in 0..4u16 {
            m.write_parcel(i as u32 * 2, i + 1).unwrap();
        }
        assert_eq!(m.parcel_window(4, 10), vec![3, 4]);
        assert_eq!(m.parcel_window(0, 2), vec![1, 2]);
        assert!(m.parcel_window(8, 4).is_empty());
    }
}

//! Per-branch-site aggregation of the pipeline event stream.
//!
//! [`BranchProfiler`] is a [`PipeObserver`] that folds the stream into
//! a table keyed by branch PC: directions, static-prediction accuracy,
//! where each branch resolved (which fixes its mispredict penalty),
//! and fold outcomes with failure reasons. Its totals reconcile with
//! [`crate::CycleStats`] by construction — the `prop_observer`
//! property test pins that down.

use std::collections::BTreeMap;
use std::fmt;

use crisp_isa::FoldFailure;

use crate::geometry::{PipelineGeometry, StageHistogram};
use crate::observe::{PipeEvent, PipeObserver};

/// Accumulated behaviour of one conditional-branch site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Retirements where the branch was taken.
    pub taken: u64,
    /// Retirements where it fell through.
    pub not_taken: u64,
    /// Retirements where the static prediction bit was right.
    pub predicted_right: u64,
    /// Retirements where the branch was folded with a host.
    pub folded_retires: u64,
    /// Resolutions by stage (at the default geometry: 0 = cache read,
    /// 1 = IR, 2 = OR, 3 = RR); the index is the penalty paid when
    /// mispredicted.
    pub resolved_at: StageHistogram,
    /// Mispredicted resolutions by the same stage index.
    pub mispredicts_by_stage: StageHistogram,
}

impl SiteStats {
    /// An empty site record sized to `geo`'s resolve points.
    pub fn for_geometry(geo: PipelineGeometry) -> SiteStats {
        SiteStats {
            resolved_at: StageHistogram::for_geometry(geo),
            mispredicts_by_stage: StageHistogram::for_geometry(geo),
            ..SiteStats::default()
        }
    }

    /// Total retirements of this site.
    pub fn executions(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Total mispredicted resolutions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts_by_stage.total()
    }

    /// Cycles lost to this site's mispredicts under the "stage index
    /// *is* the penalty" schedule (3/2/1/0 on the paper's machine).
    pub fn penalty_cycles(&self) -> u64 {
        self.mispredicts_by_stage.penalty_cycles()
    }
}

/// A [`PipeObserver`] that aggregates branch behaviour per site.
#[derive(Debug, Clone, Default)]
pub struct BranchProfiler {
    sites: BTreeMap<u32, SiteStats>,
    /// Pipeline geometry the observed run uses; sizes each site's
    /// resolve histograms.
    geometry: PipelineGeometry,
    /// Fold failures by reason, over all PDU decodes (a site can
    /// appear many times if re-decoded after eviction).
    pub fold_failures: [u64; FoldFailure::ALL.len()],
    /// Successful folds performed by the PDU.
    pub folds: u64,
    /// Total issues observed (folded hosts count once).
    pub issues: u64,
    /// Issues whose entry carried a folded branch.
    pub folded_issues: u64,
}

impl BranchProfiler {
    /// An empty profiler for the paper's default geometry.
    pub fn new() -> BranchProfiler {
        BranchProfiler::default()
    }

    /// An empty profiler for runs at `geo` — resolve histograms get
    /// one bucket per resolve point (events beyond the last bucket
    /// would otherwise clamp into it).
    pub fn with_geometry(geo: PipelineGeometry) -> BranchProfiler {
        BranchProfiler {
            geometry: geo,
            ..BranchProfiler::default()
        }
    }

    /// The per-site table, ordered by PC.
    pub fn sites(&self) -> &BTreeMap<u32, SiteStats> {
        &self.sites
    }

    /// Total conditional-branch retirements.
    pub fn branch_retires(&self) -> u64 {
        self.sites.values().map(SiteStats::executions).sum()
    }

    /// Total mispredicted resolutions across sites.
    pub fn mispredicts(&self) -> u64 {
        self.sites.values().map(SiteStats::mispredicts).sum()
    }

    /// Mispredicted resolutions summed by stage across sites.
    pub fn mispredicts_by_stage(&self) -> StageHistogram {
        let mut out = StageHistogram::for_geometry(self.geometry);
        for site in self.sites.values() {
            out.merge(&site.mispredicts_by_stage);
        }
        out
    }

    /// Resolutions at cache-read time summed across sites.
    pub fn resolved_at_fetch(&self) -> u64 {
        self.sites.values().map(|s| s.resolved_at.get(0)).sum()
    }

    /// Sites ordered by mispredict-penalty cycles, worst first; ties
    /// broken by PC for a stable listing.
    pub fn hottest(&self) -> Vec<(u32, SiteStats)> {
        let mut rows: Vec<(u32, SiteStats)> = self.sites.iter().map(|(&pc, &s)| (pc, s)).collect();
        rows.sort_by(|a, b| {
            b.1.penalty_cycles()
                .cmp(&a.1.penalty_cycles())
                .then(b.1.mispredicts().cmp(&a.1.mispredicts()))
                .then(a.0.cmp(&b.0))
        });
        rows
    }
}

impl PipeObserver for BranchProfiler {
    fn event(&mut self, ev: PipeEvent) {
        match ev {
            PipeEvent::Issue { folded, .. } => {
                self.issues += 1;
                if folded {
                    self.folded_issues += 1;
                }
            }
            PipeEvent::BranchRetire {
                branch_pc,
                taken,
                predicted,
                folded,
                ..
            } => {
                let geo = self.geometry;
                let site = self
                    .sites
                    .entry(branch_pc)
                    .or_insert_with(|| SiteStats::for_geometry(geo));
                if taken {
                    site.taken += 1;
                } else {
                    site.not_taken += 1;
                }
                if taken == predicted {
                    site.predicted_right += 1;
                }
                if folded {
                    site.folded_retires += 1;
                }
            }
            PipeEvent::BranchResolve {
                branch_pc,
                stage,
                mispredicted,
                ..
            } => {
                let geo = self.geometry;
                let site = self
                    .sites
                    .entry(branch_pc)
                    .or_insert_with(|| SiteStats::for_geometry(geo));
                // `bump` clamps out-of-range stages into the last
                // bucket, preserving the old defensive `.min(3)`.
                site.resolved_at.bump(stage as usize);
                if mispredicted {
                    site.mispredicts_by_stage.bump(stage as usize);
                }
            }
            PipeEvent::Fold { .. } => self.folds += 1,
            PipeEvent::FoldFail { reason, .. } => {
                self.fold_failures[reason as usize] += 1;
            }
            _ => {}
        }
    }
}

/// The human-readable profile report: totals, fold outcomes, and the
/// hottest mispredicting sites.
impl fmt::Display for BranchProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "branch-site profile")?;
        writeln!(f, "  issues               : {}", self.issues)?;
        writeln!(f, "  folded issues        : {}", self.folded_issues)?;
        writeln!(f, "  branch retirements   : {}", self.branch_retires())?;
        writeln!(f, "  mispredicts          : {}", self.mispredicts())?;
        writeln!(f, "  pdu folds            : {}", self.folds)?;
        let failed: u64 = self.fold_failures.iter().sum();
        writeln!(f, "  pdu fold failures    : {failed}")?;
        for (reason, &n) in FoldFailure::ALL.iter().zip(&self.fold_failures) {
            if n > 0 {
                writeln!(f, "    {:<18} : {n}", reason.name())?;
            }
        }
        if self.sites.is_empty() {
            return writeln!(f, "  (no conditional branches retired)");
        }
        writeln!(f)?;
        // The resolve columns cover the in-pipe stages 1..=retire —
        // "IR/OR/RR" on the paper's machine, one column per stage on
        // deeper geometries.
        let stage_label = (1..=self.geometry.retire_stage())
            .map(|s| self.geometry.stage_name(s))
            .collect::<Vec<_>>()
            .join("/");
        writeln!(
            f,
            "  {:<10} {:>7} {:>7} {:>8} {:>7} {:>8} {:>9}  resolved {stage_label}",
            "branch pc", "taken", "fall", "pred-ok%", "mispred", "penalty", "folded%"
        )?;
        for (pc, s) in self.hottest() {
            let execs = s.executions().max(1);
            let resolved = s.resolved_at.as_slice()[1..]
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("/");
            writeln!(
                f,
                "  {:<#10x} {:>7} {:>7} {:>7.1}% {:>7} {:>8} {:>8.1}%  {resolved}",
                pc,
                s.taken,
                s.not_taken,
                100.0 * s.predicted_right as f64 / execs as f64,
                s.mispredicts(),
                s.penalty_cycles(),
                100.0 * s.folded_retires as f64 / execs as f64,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_aggregates_per_site() {
        let mut p = BranchProfiler::new();
        for (taken, predicted) in [(true, true), (true, false), (false, false)] {
            p.event(PipeEvent::BranchRetire {
                cycle: 0,
                branch_pc: 0x10,
                taken,
                predicted,
                folded: taken,
            });
        }
        p.event(PipeEvent::BranchResolve {
            cycle: 0,
            branch_pc: 0x10,
            stage: 3,
            mispredicted: true,
        });
        p.event(PipeEvent::BranchResolve {
            cycle: 1,
            branch_pc: 0x10,
            stage: 0,
            mispredicted: false,
        });
        p.event(PipeEvent::Issue {
            cycle: 2,
            pc: 0x10,
            folded: true,
        });
        p.event(PipeEvent::Fold {
            cycle: 2,
            pc: 0x10,
            branch_pc: 0x12,
        });
        p.event(PipeEvent::FoldFail {
            cycle: 3,
            pc: 0x20,
            branch_pc: 0x22,
            reason: FoldFailure::BranchTooLong,
        });

        let site = p.sites()[&0x10];
        assert_eq!(site.taken, 2);
        assert_eq!(site.not_taken, 1);
        assert_eq!(site.predicted_right, 2);
        assert_eq!(site.folded_retires, 2);
        assert_eq!(site.mispredicts(), 1);
        assert_eq!(site.penalty_cycles(), 3);
        assert_eq!(p.resolved_at_fetch(), 1);
        assert_eq!(p.mispredicts_by_stage(), [0, 0, 0, 1]);
        assert_eq!(p.folds, 1);
        assert_eq!(p.fold_failures[FoldFailure::BranchTooLong as usize], 1);

        let text = p.to_string();
        assert!(text.contains("0x10"), "{text}");
        assert!(text.contains("branch-too-long"), "{text}");
    }

    #[test]
    fn deep_geometry_sites_track_all_stages() {
        let g = PipelineGeometry::new(5);
        let mut p = BranchProfiler::with_geometry(g);
        p.event(PipeEvent::BranchResolve {
            cycle: 0,
            branch_pc: 0x10,
            stage: 5,
            mispredicted: true,
        });
        // A depth-5 retire resolve is NOT clamped into a 4th bucket.
        assert_eq!(p.mispredicts_by_stage(), [0, 0, 0, 0, 0, 1]);
        assert_eq!(p.sites()[&0x10].penalty_cycles(), 5);
        let text = p.to_string();
        assert!(text.contains("resolved E1/E2/E3/E4/RR"), "{text}");
    }

    #[test]
    fn hottest_orders_by_penalty() {
        let mut p = BranchProfiler::new();
        // Site 0x10: one RR mispredict (penalty 3). Site 0x20: two IR
        // mispredicts (penalty 2 total).
        p.event(PipeEvent::BranchResolve {
            cycle: 0,
            branch_pc: 0x10,
            stage: 3,
            mispredicted: true,
        });
        for _ in 0..2 {
            p.event(PipeEvent::BranchResolve {
                cycle: 1,
                branch_pc: 0x20,
                stage: 1,
                mispredicted: true,
            });
        }
        let hottest = p.hottest();
        assert_eq!(hottest[0].0, 0x10);
        assert_eq!(hottest[1].0, 0x20);
    }
}

//! Hardware branch-direction predictors shared between the cycle
//! engine and the trace-driven study in `crisp-predict`.
//!
//! The paper's comparison — a single compiler-set static bit against
//! dynamic hardware schemes — needs both kinds of model to make *the
//! same predictions over the same branch stream*, or the cycle-level
//! and trace-level numbers cannot be reconciled. This module owns the
//! shared [`Predictor`] trait (re-exported by `crisp_predict`) plus the
//! finite, preallocated table implementations the pipeline instantiates
//! from [`HwPredictor`]:
//!
//! * [`CounterTable`] — a direct-mapped table of n-bit saturating
//!   counters (J. Smith's weighted history, the scheme behind the
//!   paper's Table 1 dynamic columns);
//! * [`BtbTable`] — the direction half of a Lee-Smith branch target
//!   buffer (set-associative, 2-bit counters, LRU, allocate-on-taken);
//! * [`JumpTraceTable`] — the MU5 jump trace (a small fully-associative
//!   FIFO of taken-branch addresses).
//!
//! # The trace-vs-pipeline seam
//!
//! A trace-driven model sees `predict → update` fused per branch; the
//! pipeline predicts at fetch and trains at retire, so in a tight loop
//! a branch is predicted again *before* its previous outcome trains
//! the table, and wrong-path fetches are predicted but never trained.
//! The contract that keeps the two worlds bit-identical is therefore:
//! **`predict` never mutates predictor state; `update` carries every
//! mutation** (counter movement, LRU stamps, allocation, eviction).
//! Under that contract, replaying the pipeline's actual operation
//! stream through a trace-driven model reproduces its prediction
//! stream exactly — the cross-validation the `prop_predictor_xval`
//! suite enforces.
//!
//! On direction-only equivalence: the BTB and jump trace store branch
//! targets, but no stored target ever influences hit/miss, counter
//! state, or replacement. Conditional-branch targets are static per
//! address in this ISA, so the direction-only tables here are exactly
//! direction-equivalent to the target-carrying `crisp-predict` models.

use crate::config::HwPredictor;

/// A per-branch direction predictor consulted before each conditional
/// branch and trained afterwards.
///
/// `predict` must be semantically read-only (no observable effect on
/// later predictions or updates); `update` carries all state mutation.
/// The pipeline relies on this split — see the module docs.
pub trait Predictor {
    /// Predict whether the branch at `pc` will be taken.
    fn predict(&mut self, pc: u32) -> bool;
    /// Train with the actual outcome.
    fn update(&mut self, pc: u32, taken: bool);
    /// Short human-readable name.
    fn name(&self) -> String;
}

/// A direct-mapped table of n-bit saturating counters (the dynamic
/// hardware predictor the paper evaluated and rejected). Counters start
/// at the weakly-not-taken value; the index is the parcel address
/// (`pc >> 1`) masked to the table size — identical to
/// `crisp_predict::FinitePredictor`, which cross-validates it.
#[derive(Debug, Clone)]
pub struct CounterTable {
    bits: u8,
    threshold: u8,
    max: u8,
    mask: usize,
    counters: Vec<u8>,
}

impl CounterTable {
    /// Create a table of `entries` counters, each `bits` wide.
    ///
    /// # Panics
    ///
    /// Panics on a zero/oversized width or a non-power-of-two size
    /// (construction sites validate via [`crate::SimConfig::validate`]).
    pub fn new(bits: u8, entries: usize) -> CounterTable {
        assert!((1..=7).contains(&bits), "counter bits must be 1..=7");
        assert!(
            entries.is_power_of_two() && entries >= 1,
            "table entries must be a power of two"
        );
        let threshold = 1 << (bits - 1);
        CounterTable {
            bits,
            threshold,
            max: (1 << bits) - 1,
            mask: entries - 1,
            // Weakly not-taken initial state.
            counters: vec![threshold - 1; entries],
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 1) as usize) & self.mask
    }

    /// Read-only prediction for the branch at `pc`.
    #[inline]
    pub fn guess(&self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= self.threshold
    }

    /// Move the counter toward the actual outcome.
    #[inline]
    pub fn train(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(self.max);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

impl Predictor for CounterTable {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        format!("{}-bit dynamic, {} entries", self.bits, self.mask + 1)
    }
}

/// One resident BTB entry: a branch address with its 2-bit direction
/// counter and LRU stamp. No target — see the module docs.
#[derive(Debug, Clone, Copy)]
struct BtbSlot {
    pc: u32,
    counter: u8,
    used: u64,
}

/// The direction half of a set-associative branch target buffer with
/// 2-bit counters, LRU replacement and allocate-on-taken — the
/// Lee-Smith design the paper sizes at "128 sets of 4 entries" (and
/// notes would be "nearly as large as our entire microprocessor
/// chip"). A lookup miss predicts not-taken (fall through).
#[derive(Debug, Clone)]
pub struct BtbTable {
    mask: usize,
    ways: usize,
    /// Per-set entry lists, each preallocated to `ways` so the steady
    /// state never allocates.
    sets: Vec<Vec<BtbSlot>>,
    /// LRU clock, advanced once per [`BtbTable::train`].
    clock: u64,
}

impl BtbTable {
    /// Create a BTB of `sets` sets × `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics when `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> BtbTable {
        assert!(
            sets.is_power_of_two() && sets >= 1,
            "sets must be a power of two"
        );
        assert!(ways >= 1, "ways must be at least 1");
        BtbTable {
            mask: sets - 1,
            ways,
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            clock: 0,
        }
    }

    fn set_index(&self, pc: u32) -> usize {
        ((pc >> 1) as usize) & self.mask
    }

    /// Read-only prediction: `(direction, table_miss)`. A hit predicts
    /// by its counter; a miss predicts not-taken.
    #[inline]
    pub fn guess(&self, pc: u32) -> (bool, bool) {
        match self.sets[self.set_index(pc)].iter().find(|e| e.pc == pc) {
            Some(e) => (e.counter >= 2, false),
            None => (false, true),
        }
    }

    /// Train with the actual outcome: move a hit entry's counter and
    /// LRU stamp; allocate on a taken miss (evicting LRU at capacity).
    pub fn train(&mut self, pc: u32, taken: bool) {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let idx = self.set_index(pc);
        let set = &mut self.sets[idx];
        match set.iter_mut().find(|e| e.pc == pc) {
            Some(e) => {
                e.counter = if taken {
                    (e.counter + 1).min(3)
                } else {
                    e.counter.saturating_sub(1)
                };
                e.used = clock;
            }
            None if taken => {
                // Allocate on taken branches only (a BTB of fall-through
                // branches would be useless), born weakly taken.
                let entry = BtbSlot {
                    pc,
                    counter: 2,
                    used: clock,
                };
                if set.len() < ways {
                    set.push(entry);
                } else {
                    let lru = set
                        .iter_mut()
                        .min_by_key(|e| e.used)
                        .expect("ways >= 1 guarantees an entry");
                    *lru = entry;
                }
            }
            None => {}
        }
    }
}

impl Predictor for BtbTable {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc).0
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        format!("BTB {}x{}", self.mask + 1, self.ways)
    }
}

/// The Manchester MU5 Jump Trace: a small fully-associative FIFO of
/// taken-branch addresses. A hit predicts taken; a miss predicts
/// sequential flow; a not-taken occurrence evicts its entry. The paper:
/// "Results for the MU5 show only a 40-65 percent correct prediction
/// rate for an eight entry jump-trace, barely better than tossing a
/// coin."
#[derive(Debug, Clone)]
pub struct JumpTraceTable {
    capacity: usize,
    /// FIFO order, oldest first; preallocated to capacity.
    entries: Vec<u32>,
}

impl JumpTraceTable {
    /// Create a jump trace with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> JumpTraceTable {
        assert!(capacity >= 1, "capacity must be at least 1");
        JumpTraceTable {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Read-only prediction: `(direction, table_miss)`. A resident
    /// branch predicts taken; anything else predicts not-taken.
    #[inline]
    pub fn guess(&self, pc: u32) -> (bool, bool) {
        let hit = self.entries.contains(&pc);
        (hit, !hit)
    }

    /// Train with the actual outcome: a not-taken hit evicts, a taken
    /// miss inserts (dropping the oldest entry at capacity).
    pub fn train(&mut self, pc: u32, taken: bool) {
        let hit = self.entries.iter().position(|&p| p == pc);
        match (hit, taken) {
            (Some(_), true) => {}
            (Some(i), false) => {
                self.entries.remove(i);
            }
            (None, true) => {
                if self.entries.len() == self.capacity {
                    self.entries.remove(0);
                }
                self.entries.push(pc);
            }
            (None, false) => {}
        }
    }
}

impl Predictor for JumpTraceTable {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc).0
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        format!("jump trace, {} entries", self.capacity)
    }
}

/// The live predictor instance the cycle engine carries, instantiated
/// from [`HwPredictor`] (`None` for the static bit — the shipped
/// design has no hardware table at all, and the hot path stays
/// untouched).
#[derive(Debug, Clone)]
pub enum HwPredictorState {
    /// Direct-mapped n-bit saturating counters.
    Counters(CounterTable),
    /// Set-associative Lee-Smith BTB (direction half).
    Btb(BtbTable),
    /// MU5 jump trace FIFO.
    JumpTrace(JumpTraceTable),
}

impl HwPredictorState {
    /// Build the table a configuration calls for; `None` for
    /// [`HwPredictor::StaticBit`].
    pub fn from_config(cfg: HwPredictor) -> Option<HwPredictorState> {
        match cfg {
            HwPredictor::StaticBit => None,
            HwPredictor::Dynamic { bits, entries } => {
                Some(HwPredictorState::Counters(CounterTable::new(bits, entries)))
            }
            HwPredictor::Btb { entries, ways } => {
                Some(HwPredictorState::Btb(BtbTable::new(entries, ways)))
            }
            HwPredictor::JumpTrace { entries } => {
                Some(HwPredictorState::JumpTrace(JumpTraceTable::new(entries)))
            }
        }
    }

    /// Read-only prediction: `(direction, table_miss)`. `table_miss`
    /// marks a guess that came from the miss default rather than a
    /// resident entry — a direct-mapped counter table always "hits".
    #[inline]
    pub fn guess(&self, pc: u32) -> (bool, bool) {
        match self {
            HwPredictorState::Counters(t) => (t.guess(pc), false),
            HwPredictorState::Btb(t) => t.guess(pc),
            HwPredictorState::JumpTrace(t) => t.guess(pc),
        }
    }

    /// Train with the actual outcome.
    #[inline]
    pub fn train(&mut self, pc: u32, taken: bool) {
        match self {
            HwPredictorState::Counters(t) => t.train(pc, taken),
            HwPredictorState::Btb(t) => t.train(pc, taken),
            HwPredictorState::JumpTrace(t) => t.train(pc, taken),
        }
    }
}

impl Predictor for HwPredictorState {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc).0
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        match self {
            HwPredictorState::Counters(t) => t.name(),
            HwPredictorState::Btb(t) => t.name(),
            HwPredictorState::JumpTrace(t) => t.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_learns_and_saturates() {
        let mut t = CounterTable::new(2, 16);
        assert!(!t.guess(0x10), "weakly not-taken start");
        t.train(0x10, true);
        t.train(0x10, true);
        assert!(t.guess(0x10));
        // One not-taken must not flip a strongly-taken counter.
        t.train(0x10, true);
        t.train(0x10, false);
        assert!(t.guess(0x10));
    }

    #[test]
    fn counter_table_aliases_at_table_size() {
        let t = CounterTable::new(2, 16);
        assert_eq!(t.index(0x20), t.index(0x20 + 32));
        assert_ne!(t.index(0x20), t.index(0x22));
    }

    #[test]
    fn btb_miss_predicts_not_taken_and_allocates_on_taken() {
        let mut t = BtbTable::new(8, 2);
        assert_eq!(t.guess(0x10), (false, true));
        t.train(0x10, true);
        assert_eq!(t.guess(0x10), (true, false), "born weakly taken");
        // Never-taken branches are not allocated.
        t.train(0x20, false);
        assert_eq!(t.guess(0x20), (false, true));
    }

    #[test]
    fn btb_predict_does_not_mutate() {
        let mut t = BtbTable::new(8, 2);
        t.train(0x10, true);
        let before = format!("{t:?}");
        for _ in 0..10 {
            t.guess(0x10);
            t.guess(0x99);
        }
        assert_eq!(format!("{t:?}"), before);
    }

    #[test]
    fn btb_evicts_lru_within_a_set() {
        // 1 set × 2 ways: three hot branches fight over two slots.
        let mut t = BtbTable::new(1, 2);
        t.train(0x10, true);
        t.train(0x20, true);
        // 0x10 is LRU; allocating 0x30 must displace it.
        t.train(0x30, true);
        assert_eq!(t.guess(0x10), (false, true), "LRU entry evicted");
        assert!(!t.guess(0x20).1);
        assert!(!t.guess(0x30).1);
    }

    #[test]
    fn jump_trace_fifo_and_not_taken_eviction() {
        let mut t = JumpTraceTable::new(2);
        t.train(0x10, true);
        t.train(0x20, true);
        assert_eq!(t.guess(0x10), (true, false));
        // Capacity eviction drops the oldest.
        t.train(0x30, true);
        assert_eq!(t.guess(0x10), (false, true));
        // A not-taken occurrence evicts its entry.
        t.train(0x20, false);
        assert_eq!(t.guess(0x20), (false, true));
    }

    #[test]
    fn state_builds_from_every_config() {
        use crate::config::HwPredictor;
        assert!(HwPredictorState::from_config(HwPredictor::StaticBit).is_none());
        let c = HwPredictorState::from_config(HwPredictor::Dynamic {
            bits: 2,
            entries: 64,
        })
        .unwrap();
        assert!(matches!(c, HwPredictorState::Counters(_)));
        assert!(!c.guess(0).1, "counter tables never miss");
        let b = HwPredictorState::from_config(HwPredictor::Btb {
            entries: 128,
            ways: 4,
        })
        .unwrap();
        assert_eq!(b.guess(0), (false, true));
        let j = HwPredictorState::from_config(HwPredictor::JumpTrace { entries: 8 }).unwrap();
        assert_eq!(j.guess(0), (false, true));
    }

    #[test]
    fn trait_dispatch_matches_inherent_calls() {
        let mut s = HwPredictorState::from_config(HwPredictor::Btb {
            entries: 8,
            ways: 2,
        })
        .unwrap();
        s.update(0x10, true);
        assert_eq!(s.predict(0x10), s.guess(0x10).0);
        assert!(s.name().contains("BTB"));
    }
}

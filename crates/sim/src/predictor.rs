//! Hardware branch-direction predictors shared between the cycle
//! engine and the trace-driven study in `crisp-predict`.
//!
//! The paper's comparison — a single compiler-set static bit against
//! dynamic hardware schemes — needs both kinds of model to make *the
//! same predictions over the same branch stream*, or the cycle-level
//! and trace-level numbers cannot be reconciled. This module owns the
//! shared [`Predictor`] trait (re-exported by `crisp_predict`) plus the
//! finite, preallocated table implementations the pipeline instantiates
//! from [`HwPredictor`]:
//!
//! * [`CounterTable`] — a direct-mapped table of n-bit saturating
//!   counters (J. Smith's weighted history, the scheme behind the
//!   paper's Table 1 dynamic columns);
//! * [`BtbTable`] — the direction half of a Lee-Smith branch target
//!   buffer (set-associative, 2-bit counters, LRU, allocate-on-taken);
//! * [`JumpTraceTable`] — the MU5 jump trace (a small fully-associative
//!   FIFO of taken-branch addresses).
//!
//! # The trace-vs-pipeline seam
//!
//! A trace-driven model sees `predict → update` fused per branch; the
//! pipeline predicts at fetch and trains at retire, so in a tight loop
//! a branch is predicted again *before* its previous outcome trains
//! the table, and wrong-path fetches are predicted but never trained.
//! The contract that keeps the two worlds bit-identical is therefore:
//! **`predict` never mutates predictor state; `update` carries every
//! mutation** (counter movement, LRU stamps, allocation, eviction).
//! Under that contract, replaying the pipeline's actual operation
//! stream through a trace-driven model reproduces its prediction
//! stream exactly — the cross-validation the `prop_predictor_xval`
//! suite enforces.
//!
//! On direction-only equivalence: the BTB and jump trace store branch
//! targets, but no stored target ever influences hit/miss, counter
//! state, or replacement. Conditional-branch targets are static per
//! address in this ISA, so the direction-only tables here are exactly
//! direction-equivalent to the target-carrying `crisp-predict` models.

use crate::config::{DegradePolicy, HwPredictor};
use crate::soft_error::{FaultField, ParityMode};

/// A per-branch direction predictor consulted before each conditional
/// branch and trained afterwards.
///
/// `predict` must be semantically read-only (no observable effect on
/// later predictions or updates); `update` carries all state mutation.
/// The pipeline relies on this split — see the module docs.
pub trait Predictor {
    /// Predict whether the branch at `pc` will be taken.
    fn predict(&mut self, pc: u32) -> bool;
    /// Train with the actual outcome.
    fn update(&mut self, pc: u32, taken: bool);
    /// Short human-readable name.
    fn name(&self) -> String;
}

/// A direct-mapped table of n-bit saturating counters (the dynamic
/// hardware predictor the paper evaluated and rejected). Counters start
/// at the weakly-not-taken value; the index is the parcel address
/// (`pc >> 1`) masked to the table size — identical to
/// `crisp_predict::FinitePredictor`, which cross-validates it.
#[derive(Debug, Clone)]
pub struct CounterTable {
    bits: u8,
    threshold: u8,
    max: u8,
    mask: usize,
    counters: Vec<u8>,
}

impl CounterTable {
    /// Create a table of `entries` counters, each `bits` wide.
    ///
    /// # Panics
    ///
    /// Panics on a zero/oversized width or a non-power-of-two size
    /// (construction sites validate via [`crate::SimConfig::validate`]).
    pub fn new(bits: u8, entries: usize) -> CounterTable {
        assert!((1..=7).contains(&bits), "counter bits must be 1..=7");
        assert!(
            entries.is_power_of_two() && entries >= 1,
            "table entries must be a power of two"
        );
        let threshold = 1 << (bits - 1);
        CounterTable {
            bits,
            threshold,
            max: (1 << bits) - 1,
            mask: entries - 1,
            // Weakly not-taken initial state.
            counters: vec![threshold - 1; entries],
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 1) as usize) & self.mask
    }

    /// Read-only prediction for the branch at `pc`.
    #[inline]
    pub fn guess(&self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= self.threshold
    }

    /// Move the counter toward the actual outcome.
    #[inline]
    pub fn train(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(self.max);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Flip one bit of the counter at `slot` (modulo the table size) —
    /// transient-fault injection. The flip stays inside the counter's
    /// width, so the value remains representable and later training is
    /// unaffected; there is no parity on counters (a flipped counter is
    /// just a different — equally legal — prediction history). Returns
    /// the parcel address that indexes the struck counter.
    pub fn corrupt(&mut self, slot: u32, bit: u8) -> Option<u32> {
        let i = slot as usize % self.counters.len();
        self.counters[i] ^= 1 << (bit % self.bits);
        Some((i as u32) << 1)
    }
}

impl Predictor for CounterTable {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        format!("{}-bit dynamic, {} entries", self.bits, self.mask + 1)
    }
}

/// One resident BTB entry: a branch address with its 2-bit direction
/// counter, LRU stamp and a parity bit over the tag + counter. No
/// target — see the module docs.
#[derive(Debug, Clone, Copy)]
struct BtbSlot {
    pc: u32,
    counter: u8,
    used: u64,
    /// Odd parity over `pc` and `counter`, kept correct by every
    /// legitimate write; a transient flip leaves it stale, which the
    /// train-port scrub detects.
    parity: bool,
}

/// The parity bit a well-formed [`BtbSlot`] carries: odd popcount of
/// the tag and the counter (the LRU stamp is replacement metadata, not
/// prediction state, so it is outside the protected word).
fn slot_parity(pc: u32, counter: u8) -> bool {
    (pc.count_ones() + u32::from(counter).count_ones()) & 1 == 1
}

/// The direction half of a set-associative branch target buffer with
/// 2-bit counters, LRU replacement and allocate-on-taken — the
/// Lee-Smith design the paper sizes at "128 sets of 4 entries" (and
/// notes would be "nearly as large as our entire microprocessor
/// chip"). A lookup miss predicts not-taken (fall through).
#[derive(Debug, Clone)]
pub struct BtbTable {
    mask: usize,
    ways: usize,
    /// Per-set entry lists, each preallocated to `ways` so the steady
    /// state never allocates.
    sets: Vec<Vec<BtbSlot>>,
    /// LRU clock, advanced once per [`BtbTable::train`].
    clock: u64,
    /// Whether the train port checks slot parity (see
    /// [`BtbTable::protect`]). Reads stay unchecked: a wrong direction
    /// guess is architecturally safe, so the read port needs no parity
    /// tree — exactly the cheap-hardware argument the paper makes.
    protected: bool,
    /// Parity detections per way position, feeding the degrade policy.
    way_parity_hits: Vec<u32>,
    /// Ways taken out of service by the degrade policy.
    ways_disabled: usize,
    /// Parity hits on one way before it is disabled; `None` never
    /// degrades.
    degrade_limit: Option<u32>,
    /// Ways disabled since the engine last drained the queue
    /// (preallocated to `ways`; see [`BtbTable::take_degraded`]).
    pending_degraded: Vec<u32>,
    /// Total parity-mismatched entries scrubbed from the table. Kept
    /// separate from the cache's `parity_invalidates`: a scrub drops
    /// hint state without a refill, so it is not an invalidate event.
    pub parity_scrubs: u64,
}

impl BtbTable {
    /// Create a BTB of `sets` sets × `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics when `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> BtbTable {
        assert!(
            sets.is_power_of_two() && sets >= 1,
            "sets must be a power of two"
        );
        assert!(ways >= 1, "ways must be at least 1");
        BtbTable {
            mask: sets - 1,
            ways,
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            clock: 0,
            protected: false,
            way_parity_hits: vec![0; ways],
            ways_disabled: 0,
            degrade_limit: None,
            pending_degraded: Vec::with_capacity(ways),
            parity_scrubs: 0,
        }
    }

    /// Enable the train-port parity scrub and (optionally) the degrade
    /// policy: a way accumulating `degrade_limit` parity hits is taken
    /// out of service, shrinking the table's associativity.
    pub fn protect(&mut self, parity: bool, degrade_limit: Option<u32>) {
        self.protected = parity;
        self.degrade_limit = degrade_limit;
    }

    /// Ways still in service.
    fn live_ways(&self) -> usize {
        self.ways - self.ways_disabled
    }

    /// Whether every way has been disabled: the table can no longer
    /// hold entries, so every guess is the miss default and the engine
    /// should fall back to the static prediction bit.
    pub fn fully_degraded(&self) -> bool {
        self.ways_disabled == self.ways
    }

    /// Drain one pending way-disablement (for the engine to turn into
    /// a `Degrade` event + stat); `None` when nothing new degraded.
    pub fn take_degraded(&mut self) -> Option<u32> {
        self.pending_degraded.pop()
    }

    /// Scrub one set through the train-port parity check: every entry
    /// whose stored parity disagrees with its content is dropped (the
    /// BTB is a hint structure — scrubbing costs prediction accuracy,
    /// never correctness), and repeated hits on one way position can
    /// disable that way under the degrade policy.
    fn scrub(&mut self, idx: usize) {
        if !self.protected {
            return;
        }
        loop {
            let set = &mut self.sets[idx];
            let bad = set
                .iter()
                .position(|e| e.parity != slot_parity(e.pc, e.counter));
            let Some(p) = bad else { break };
            set.remove(p);
            self.parity_scrubs += 1;
            let way = p.min(self.ways - 1);
            self.way_parity_hits[way] += 1;
            if let Some(limit) = self.degrade_limit {
                if self.way_parity_hits[way] >= limit && self.ways_disabled < self.ways {
                    self.ways_disabled += 1;
                    self.pending_degraded.push(way as u32);
                    let live = self.live_ways();
                    for s in &mut self.sets {
                        s.truncate(live);
                    }
                }
            }
        }
    }

    /// Flip one bit of a resident entry (transient-fault injection).
    /// `slot` indexes the resident entries in set order, modulo
    /// occupancy; returns the struck entry's branch address, or `None`
    /// when the table holds no state to corrupt. Stored parity is
    /// deliberately left stale — that is what makes the strike
    /// detectable.
    pub fn corrupt(&mut self, slot: u32, field: FaultField) -> Option<u32> {
        let total: usize = self.sets.iter().map(Vec::len).sum();
        if total == 0 {
            return None;
        }
        let mut n = slot as usize % total;
        let set = self
            .sets
            .iter_mut()
            .find(|s| {
                if n < s.len() {
                    true
                } else {
                    n -= s.len();
                    false
                }
            })
            .expect("total counted above");
        let pc = set[n].pc;
        match field {
            FaultField::BtbTag(b) => set[n].pc ^= 1 << (b % 32),
            FaultField::BtbCounter(b) => set[n].counter ^= 1 << (b % 2),
            FaultField::BtbValid => {
                // A dropped valid bit is indistinguishable from an
                // eviction: undetectable, and trivially safe.
                set.remove(n);
            }
            _ => return None,
        }
        Some(pc)
    }

    fn set_index(&self, pc: u32) -> usize {
        ((pc >> 1) as usize) & self.mask
    }

    /// Read-only prediction: `(direction, table_miss)`. A hit predicts
    /// by its counter; a miss predicts not-taken.
    #[inline]
    pub fn guess(&self, pc: u32) -> (bool, bool) {
        match self.sets[self.set_index(pc)].iter().find(|e| e.pc == pc) {
            Some(e) => (e.counter >= 2, false),
            None => (false, true),
        }
    }

    /// Train with the actual outcome: move a hit entry's counter and
    /// LRU stamp; allocate on a taken miss (evicting LRU at capacity).
    /// Under [`BtbTable::protect`] the write port first scrubs the set
    /// of parity-mismatched entries, so corrupted state is dropped
    /// before it can be trained.
    pub fn train(&mut self, pc: u32, taken: bool) {
        self.clock += 1;
        let idx = self.set_index(pc);
        self.scrub(idx);
        let clock = self.clock;
        let live = self.live_ways();
        let set = &mut self.sets[idx];
        match set.iter_mut().find(|e| e.pc == pc) {
            Some(e) => {
                e.counter = if taken {
                    (e.counter + 1).min(3)
                } else {
                    e.counter.saturating_sub(1)
                };
                e.used = clock;
                e.parity = slot_parity(e.pc, e.counter);
            }
            None if taken && live > 0 => {
                // Allocate on taken branches only (a BTB of fall-through
                // branches would be useless), born weakly taken.
                let entry = BtbSlot {
                    pc,
                    counter: 2,
                    used: clock,
                    parity: slot_parity(pc, 2),
                };
                if set.len() < live {
                    set.push(entry);
                } else {
                    let lru = set
                        .iter_mut()
                        .min_by_key(|e| e.used)
                        .expect("live > 0 guarantees an entry at capacity");
                    *lru = entry;
                }
            }
            None => {}
        }
    }
}

impl Predictor for BtbTable {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc).0
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        format!("BTB {}x{}", self.mask + 1, self.ways)
    }
}

/// The Manchester MU5 Jump Trace: a small fully-associative FIFO of
/// taken-branch addresses. A hit predicts taken; a miss predicts
/// sequential flow; a not-taken occurrence evicts its entry. The paper:
/// "Results for the MU5 show only a 40-65 percent correct prediction
/// rate for an eight entry jump-trace, barely better than tossing a
/// coin."
#[derive(Debug, Clone)]
pub struct JumpTraceTable {
    capacity: usize,
    /// FIFO order, oldest first; preallocated to capacity.
    entries: Vec<u32>,
}

impl JumpTraceTable {
    /// Create a jump trace with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> JumpTraceTable {
        assert!(capacity >= 1, "capacity must be at least 1");
        JumpTraceTable {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Read-only prediction: `(direction, table_miss)`. A resident
    /// branch predicts taken; anything else predicts not-taken.
    #[inline]
    pub fn guess(&self, pc: u32) -> (bool, bool) {
        let hit = self.entries.contains(&pc);
        (hit, !hit)
    }

    /// Train with the actual outcome: a not-taken hit evicts, a taken
    /// miss inserts (dropping the oldest entry at capacity).
    pub fn train(&mut self, pc: u32, taken: bool) {
        let hit = self.entries.iter().position(|&p| p == pc);
        match (hit, taken) {
            (Some(_), true) => {}
            (Some(i), false) => {
                self.entries.remove(i);
            }
            (None, true) => {
                if self.entries.len() == self.capacity {
                    self.entries.remove(0);
                }
                self.entries.push(pc);
            }
            (None, false) => {}
        }
    }

    /// Flip one bit of the resident address at `slot` (modulo
    /// occupancy) — transient-fault injection. The FIFO stores bare
    /// addresses with no parity: a flipped address just predicts a
    /// different branch taken, which is architecturally safe. Returns
    /// the original address, or `None` when the trace is empty.
    pub fn corrupt(&mut self, slot: u32, bit: u8) -> Option<u32> {
        if self.entries.is_empty() {
            return None;
        }
        let i = slot as usize % self.entries.len();
        let old = self.entries[i];
        self.entries[i] ^= 1 << (bit % 32);
        Some(old)
    }
}

impl Predictor for JumpTraceTable {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc).0
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        format!("jump trace, {} entries", self.capacity)
    }
}

/// The live predictor instance the cycle engine carries, instantiated
/// from [`HwPredictor`] (`None` for the static bit — the shipped
/// design has no hardware table at all, and the hot path stays
/// untouched).
#[derive(Debug, Clone)]
pub enum HwPredictorState {
    /// Direct-mapped n-bit saturating counters.
    Counters(CounterTable),
    /// Set-associative Lee-Smith BTB (direction half).
    Btb(BtbTable),
    /// MU5 jump trace FIFO.
    JumpTrace(JumpTraceTable),
}

impl HwPredictorState {
    /// Build the table a configuration calls for; `None` for
    /// [`HwPredictor::StaticBit`].
    pub fn from_config(cfg: HwPredictor) -> Option<HwPredictorState> {
        match cfg {
            HwPredictor::StaticBit => None,
            HwPredictor::Dynamic { bits, entries } => {
                Some(HwPredictorState::Counters(CounterTable::new(bits, entries)))
            }
            HwPredictor::Btb { entries, ways } => {
                Some(HwPredictorState::Btb(BtbTable::new(entries, ways)))
            }
            HwPredictor::JumpTrace { entries } => {
                Some(HwPredictorState::JumpTrace(JumpTraceTable::new(entries)))
            }
        }
    }

    /// Read-only prediction: `(direction, table_miss)`. `table_miss`
    /// marks a guess that came from the miss default rather than a
    /// resident entry — a direct-mapped counter table always "hits".
    #[inline]
    pub fn guess(&self, pc: u32) -> (bool, bool) {
        match self {
            HwPredictorState::Counters(t) => (t.guess(pc), false),
            HwPredictorState::Btb(t) => t.guess(pc),
            HwPredictorState::JumpTrace(t) => t.guess(pc),
        }
    }

    /// Train with the actual outcome.
    #[inline]
    pub fn train(&mut self, pc: u32, taken: bool) {
        match self {
            HwPredictorState::Counters(t) => t.train(pc, taken),
            HwPredictorState::Btb(t) => t.train(pc, taken),
            HwPredictorState::JumpTrace(t) => t.train(pc, taken),
        }
    }

    /// Arm the table's protection: BTB train-port parity scrub under
    /// [`ParityMode::DetectInvalidate`], plus the way-disable degrade
    /// policy when one is configured. Counter tables and the jump trace
    /// carry no parity (a flipped entry is a legal — if wrong —
    /// history), so protection is a no-op for them.
    pub fn protect(&mut self, parity: ParityMode, degrade: Option<DegradePolicy>) {
        if let HwPredictorState::Btb(t) = self {
            t.protect(
                parity == ParityMode::DetectInvalidate,
                degrade.map(|d| d.parity_limit),
            );
        }
    }

    /// Whether the table currently holds any state a fault could land
    /// in. Counter tables are always fully resident; the BTB and jump
    /// trace start empty and fill as branches train them.
    pub fn has_state(&self) -> bool {
        match self {
            HwPredictorState::Counters(_) => true,
            HwPredictorState::Btb(t) => t.sets.iter().any(|s| !s.is_empty()),
            HwPredictorState::JumpTrace(t) => !t.entries.is_empty(),
        }
    }

    /// Flip one bit of resident predictor state (transient-fault
    /// injection), dispatching on the fault field's table. Returns the
    /// struck entry's branch address, or `None` when the field does not
    /// belong to this table kind or the table holds nothing to corrupt.
    pub fn corrupt(&mut self, slot: u32, field: FaultField) -> Option<u32> {
        match (self, field) {
            (HwPredictorState::Counters(t), FaultField::CounterBit(b)) => t.corrupt(slot, b),
            (HwPredictorState::Btb(t), FaultField::BtbTag(_))
            | (HwPredictorState::Btb(t), FaultField::BtbCounter(_))
            | (HwPredictorState::Btb(t), FaultField::BtbValid) => t.corrupt(slot, field),
            (HwPredictorState::JumpTrace(t), FaultField::JumpTraceBit(b)) => t.corrupt(slot, b),
            _ => None,
        }
    }

    /// Drain one pending way-disablement from the degrade policy;
    /// `None` when nothing new degraded (or the table has no ways).
    pub fn take_degraded(&mut self) -> Option<u32> {
        match self {
            HwPredictorState::Btb(t) => t.take_degraded(),
            _ => None,
        }
    }

    /// Whether the degrade policy has taken every way out of service —
    /// the engine should fall back to the static prediction bit.
    pub fn fully_degraded(&self) -> bool {
        match self {
            HwPredictorState::Btb(t) => t.fully_degraded(),
            _ => false,
        }
    }

    /// Total parity-mismatched entries scrubbed by the train port.
    pub fn parity_scrubs(&self) -> u64 {
        match self {
            HwPredictorState::Btb(t) => t.parity_scrubs,
            _ => 0,
        }
    }
}

impl Predictor for HwPredictorState {
    fn predict(&mut self, pc: u32) -> bool {
        self.guess(pc).0
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.train(pc, taken);
    }

    fn name(&self) -> String {
        match self {
            HwPredictorState::Counters(t) => t.name(),
            HwPredictorState::Btb(t) => t.name(),
            HwPredictorState::JumpTrace(t) => t.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_learns_and_saturates() {
        let mut t = CounterTable::new(2, 16);
        assert!(!t.guess(0x10), "weakly not-taken start");
        t.train(0x10, true);
        t.train(0x10, true);
        assert!(t.guess(0x10));
        // One not-taken must not flip a strongly-taken counter.
        t.train(0x10, true);
        t.train(0x10, false);
        assert!(t.guess(0x10));
    }

    #[test]
    fn counter_table_aliases_at_table_size() {
        let t = CounterTable::new(2, 16);
        assert_eq!(t.index(0x20), t.index(0x20 + 32));
        assert_ne!(t.index(0x20), t.index(0x22));
    }

    #[test]
    fn btb_miss_predicts_not_taken_and_allocates_on_taken() {
        let mut t = BtbTable::new(8, 2);
        assert_eq!(t.guess(0x10), (false, true));
        t.train(0x10, true);
        assert_eq!(t.guess(0x10), (true, false), "born weakly taken");
        // Never-taken branches are not allocated.
        t.train(0x20, false);
        assert_eq!(t.guess(0x20), (false, true));
    }

    #[test]
    fn btb_predict_does_not_mutate() {
        let mut t = BtbTable::new(8, 2);
        t.train(0x10, true);
        let before = format!("{t:?}");
        for _ in 0..10 {
            t.guess(0x10);
            t.guess(0x99);
        }
        assert_eq!(format!("{t:?}"), before);
    }

    #[test]
    fn btb_evicts_lru_within_a_set() {
        // 1 set × 2 ways: three hot branches fight over two slots.
        let mut t = BtbTable::new(1, 2);
        t.train(0x10, true);
        t.train(0x20, true);
        // 0x10 is LRU; allocating 0x30 must displace it.
        t.train(0x30, true);
        assert_eq!(t.guess(0x10), (false, true), "LRU entry evicted");
        assert!(!t.guess(0x20).1);
        assert!(!t.guess(0x30).1);
    }

    #[test]
    fn jump_trace_fifo_and_not_taken_eviction() {
        let mut t = JumpTraceTable::new(2);
        t.train(0x10, true);
        t.train(0x20, true);
        assert_eq!(t.guess(0x10), (true, false));
        // Capacity eviction drops the oldest.
        t.train(0x30, true);
        assert_eq!(t.guess(0x10), (false, true));
        // A not-taken occurrence evicts its entry.
        t.train(0x20, false);
        assert_eq!(t.guess(0x20), (false, true));
    }

    #[test]
    fn state_builds_from_every_config() {
        use crate::config::HwPredictor;
        assert!(HwPredictorState::from_config(HwPredictor::StaticBit).is_none());
        let c = HwPredictorState::from_config(HwPredictor::Dynamic {
            bits: 2,
            entries: 64,
        })
        .unwrap();
        assert!(matches!(c, HwPredictorState::Counters(_)));
        assert!(!c.guess(0).1, "counter tables never miss");
        let b = HwPredictorState::from_config(HwPredictor::Btb {
            entries: 128,
            ways: 4,
        })
        .unwrap();
        assert_eq!(b.guess(0), (false, true));
        let j = HwPredictorState::from_config(HwPredictor::JumpTrace { entries: 8 }).unwrap();
        assert_eq!(j.guess(0), (false, true));
    }

    #[test]
    fn trait_dispatch_matches_inherent_calls() {
        let mut s = HwPredictorState::from_config(HwPredictor::Btb {
            entries: 8,
            ways: 2,
        })
        .unwrap();
        s.update(0x10, true);
        assert_eq!(s.predict(0x10), s.guess(0x10).0);
        assert!(s.name().contains("BTB"));
    }
}

use std::collections::HashMap;
use std::sync::Arc;

use crisp_isa::{decode_and_fold, Decoded, ExecOp, FoldClass, FoldPolicy};

use crate::observe::{NullObserver, PipeObserver};
use crate::predecode::{PredecodedImage, DECODE_WINDOW};
use crate::{BranchEvent, BranchKind, HaltReason, Machine, RunStats, SimError, Step, Trace};

/// Append the branch-trace event for one executed entry, if it carries
/// a branch — shared between the interpreter loop and the threaded
/// tier's generic terminator path so the two engines record identical
/// traces.
pub(crate) fn push_branch_event(trace: &mut Trace, d: &Decoded, step: &Step) {
    let Some(branch_pc) = d.branch_pc else {
        return;
    };
    let kind = match (d.fold, d.exec) {
        (FoldClass::Cond { .. }, _) => BranchKind::Cond,
        (_, ExecOp::CallPush { .. }) => BranchKind::Call,
        (_, ExecOp::RetPop) => BranchKind::Ret,
        _ => BranchKind::Uncond,
    };
    let taken = step.taken.unwrap_or(true);
    // For conditional branches record the taken-path target even when
    // not taken (a BTB stores it).
    let target = match d.cond_paths() {
        Some((taken_path, _seq)) => taken_path,
        None => step.next_pc,
    };
    trace.push(BranchEvent {
        pc: branch_pc,
        target,
        taken,
        kind,
    });
}

/// The functional (untimed) engine.
///
/// Executes decoded entries back to back: no pipeline, no cache
/// geometry, no penalties. It is the reference for architectural
/// results, the dynamic-instruction counter behind the paper's Table 2,
/// and the branch-trace recorder behind Table 1. Its results must match
/// the cycle engine's exactly — an invariant the integration tests
/// check on every workload.
///
/// Decode is served from a shared [`PredecodedImage`]: the text segment
/// is decoded once at construction (or a table is shared in via
/// [`FunctionalSim::with_predecoded`]) and the steady-state lookup is a
/// direct index. PCs outside the table — wild control flow into data or
/// odd addresses — fall back to on-demand decode memoized in a small
/// overflow map, preserving exact legacy behaviour.
#[derive(Debug)]
pub struct FunctionalSim {
    machine: Machine,
    policy: FoldPolicy,
    predecoded: Arc<PredecodedImage>,
    overflow: HashMap<u32, Decoded>,
    max_steps: u64,
    record_trace: bool,
}

/// The result of a completed functional run.
#[derive(Debug)]
pub struct FunctionalRun {
    /// Final architectural state.
    pub machine: Machine,
    /// Dynamic counts.
    pub stats: RunStats,
    /// Branch trace (empty unless [`FunctionalSim::record_trace`] was
    /// enabled).
    pub trace: Trace,
    /// Whether the program reached `halt` (as opposed to the step
    /// limit; running off the end raises an error instead).
    pub halted: bool,
    /// Why the run ended: [`HaltReason::Halted`] normally,
    /// [`HaltReason::Watchdog`] when `max_steps` elapsed first.
    pub halt_reason: HaltReason,
}

impl FunctionalSim {
    /// Wrap a loaded machine with the default (CRISP) fold policy.
    pub fn new(machine: Machine) -> FunctionalSim {
        FunctionalSim::with_policy(machine, FoldPolicy::Host13)
    }

    /// Wrap a loaded machine with an explicit fold policy.
    ///
    /// Folding never changes architectural results — executing
    /// host-then-branch is exactly sequential semantics — but it does
    /// change the entry/instruction bookkeeping, which some experiments
    /// read.
    pub fn with_policy(machine: Machine, policy: FoldPolicy) -> FunctionalSim {
        let predecoded = Arc::new(PredecodedImage::from_machine(&machine, policy));
        FunctionalSim::with_predecoded(machine, predecoded)
    }

    /// Wrap a loaded machine around an already-built predecode table
    /// (the fold policy comes from the table). Campaign workers build
    /// the table once per image × policy and share it across every
    /// case, so repeated runs skip the per-instance decode pass
    /// entirely.
    pub fn with_predecoded(machine: Machine, predecoded: Arc<PredecodedImage>) -> FunctionalSim {
        FunctionalSim {
            machine,
            policy: predecoded.policy(),
            predecoded,
            overflow: HashMap::new(),
            max_steps: 2_000_000_000,
            record_trace: false,
        }
    }

    /// Recover the machine for buffer reuse (see
    /// [`Machine::reset_from`]), dropping the engine state.
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// Enable branch-trace recording (builder style).
    pub fn record_trace(mut self, on: bool) -> FunctionalSim {
        self.record_trace = on;
        self
    }

    /// Set the runaway-program step limit (builder style).
    pub fn max_steps(mut self, limit: u64) -> FunctionalSim {
        self.max_steps = limit;
        self
    }

    fn decoded_at(&mut self, pc: u32) -> Result<Decoded, SimError> {
        // Fast path: direct index into the shared predecode table.
        // `Decoded` is `Copy`; copying the entry out keeps the machine
        // free for the mutable borrow `execute` needs.
        match self.predecoded.get(pc) {
            Some(Ok(d)) => return Ok(*d),
            Some(Err(e)) => {
                return Err(SimError::Decode {
                    pc,
                    source: e.clone(),
                })
            }
            None => {}
        }
        // Out-of-text or odd PC: decode on demand through a
        // stack-allocated window (no per-miss heap traffic), memoized
        // in the overflow map.
        if let Some(d) = self.overflow.get(&pc) {
            return Ok(*d);
        }
        let mut window = [0u16; DECODE_WINDOW];
        let n = self.machine.mem.parcel_window_into(pc, &mut window);
        let d = decode_and_fold(&window[..n], 0, pc, self.policy)
            .map_err(|source| SimError::Decode { pc, source })?;
        self.overflow.insert(pc, d);
        Ok(d)
    }

    /// The architectural state (read-only view), for callers driving
    /// the engine one step at a time.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access for the threaded tier, which executes
    /// translated blocks directly against the same architectural state
    /// and falls back to [`FunctionalSim::interp_step`] at deopt
    /// boundaries.
    pub(crate) fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// One full interpreter step — decode, execute (reporting to
    /// `obs`), per-entry statistics and optional trace recording —
    /// shared verbatim between [`FunctionalSim::run_observed`] and the
    /// threaded tier's deopt path, so the two engines cannot drift in
    /// their bookkeeping.
    pub(crate) fn interp_step<O: PipeObserver>(
        &mut self,
        step_no: u64,
        stats: &mut RunStats,
        trace: &mut Trace,
        record_trace: bool,
        obs: &mut O,
    ) -> Result<Step, SimError> {
        let pc = self.machine.pc;
        let d = self.decoded_at(pc)?;
        let step = self.machine.execute_observed(&d, step_no, obs)?;

        stats.entries += 1;
        stats.program_instrs += 1 + u64::from(d.folded);
        stats.folded += u64::from(d.folded);
        stats.opcodes.record(&d);

        if d.fold.is_transfer() {
            stats.transfers += 1;
        }
        if let FoldClass::Cond { predict_taken, .. } = d.fold {
            stats.cond_branches += 1;
            let taken = step.taken.expect("conditional step reports direction");
            if taken != predict_taken {
                stats.static_mispredicts += 1;
            }
        }

        if record_trace {
            push_branch_event(trace, &d, &step);
        }
        Ok(step)
    }

    /// Execute exactly one decoded entry at the current PC — one
    /// commit — reporting it to `obs` with `seq` in the cycle field
    /// (the functional engine has no clock). This is the lockstep
    /// primitive behind [`crate::run_lockstep`]: the oracle co-steps
    /// this engine one commit at a time against the cycle engine's
    /// retirement stream. Callers must stop once
    /// [`FunctionalSim::machine`] reports `halted`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FunctionalSim::run`] (no step limit — the
    /// caller owns the loop).
    pub fn step_observed<O: PipeObserver>(
        &mut self,
        seq: u64,
        obs: &mut O,
    ) -> Result<Step, SimError> {
        let pc = self.machine.pc;
        let d = self.decoded_at(pc)?;
        self.machine.execute_observed(&d, seq, obs)
    }

    /// Run to `halt`, or until `max_steps` expires (a graceful
    /// [`HaltReason::Watchdog`] end, not an error).
    ///
    /// # Errors
    ///
    /// * [`SimError::Decode`] if execution reaches bytes that are not
    ///   instructions;
    /// * [`SimError::MemOutOfBounds`] on wild data accesses.
    pub fn run(self) -> Result<FunctionalRun, SimError> {
        self.run_observed(&mut NullObserver)
    }

    /// Run to `halt`, reporting each retirement to `obs` (the step
    /// index plays the role of the cycle — the functional engine has
    /// no clock). Useful for comparing commit streams across engines.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FunctionalSim::run`].
    pub fn run_observed<O: PipeObserver>(mut self, obs: &mut O) -> Result<FunctionalRun, SimError> {
        let mut stats = RunStats::default();
        let mut trace = Trace::new();
        let record_trace = self.record_trace;

        for step_no in 0..self.max_steps {
            let step = self.interp_step(step_no, &mut stats, &mut trace, record_trace, obs)?;

            if step.halted {
                return Ok(FunctionalRun {
                    machine: self.machine,
                    stats,
                    trace,
                    halted: true,
                    halt_reason: HaltReason::Halted,
                });
            }
        }
        stats.watchdog = true;
        Ok(FunctionalRun {
            machine: self.machine,
            stats,
            trace,
            halted: false,
            halt_reason: HaltReason::Watchdog,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_asm::assemble_text;

    fn run(src: &str) -> FunctionalRun {
        let img = assemble_text(src).unwrap();
        FunctionalSim::new(Machine::load(&img).unwrap())
            .record_trace(true)
            .run()
            .unwrap()
    }

    #[test]
    fn counted_loop_executes_correctly() {
        let r = run("
            mov 0(sp),$0
            mov 4(sp),$0
        top:
            add 4(sp),$2
            add 0(sp),$1
            cmp.s< 0(sp),$10
            ifjmpy.t top
            halt
        ");
        assert!(r.halted);
        assert_eq!(r.machine.mem.read_word(r.machine.sp + 4).unwrap(), 20);
        assert_eq!(r.machine.mem.read_word(r.machine.sp).unwrap(), 10);
        // 10 iterations of the conditional branch.
        assert_eq!(r.stats.cond_branches, 10);
        // Predicted taken, wrong exactly once (the exit).
        assert_eq!(r.stats.static_mispredicts, 1);
    }

    #[test]
    fn folding_reduces_entries_not_instructions() {
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$5
            ifjmpy.t top
            halt
        ";
        let img = assemble_text(src).unwrap();
        let folded = FunctionalSim::with_policy(Machine::load(&img).unwrap(), FoldPolicy::Host13)
            .run()
            .unwrap();
        let unfolded = FunctionalSim::with_policy(Machine::load(&img).unwrap(), FoldPolicy::None)
            .run()
            .unwrap();
        // Same program instructions either way...
        assert_eq!(folded.stats.program_instrs, unfolded.stats.program_instrs);
        // ... but fewer pipeline entries with folding: one per iteration
        // (cmp+ifjmpy fold; 5 iterations).
        assert_eq!(unfolded.stats.entries - folded.stats.entries, 5);
        assert_eq!(folded.stats.folded, 5);
        assert_eq!(unfolded.stats.folded, 0);
        // Architectural state identical.
        assert_eq!(folded.machine.accum, unfolded.machine.accum);
        assert_eq!(
            folded.machine.mem.read_word(folded.machine.sp).unwrap(),
            unfolded.machine.mem.read_word(unfolded.machine.sp).unwrap()
        );
    }

    #[test]
    fn trace_records_branch_identity_and_direction() {
        let r = run("
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$3
            ifjmpy.t top
            halt
        ");
        let conds: Vec<_> = r
            .trace
            .iter()
            .filter(|e| e.kind == BranchKind::Cond)
            .collect();
        assert_eq!(conds.len(), 3);
        // All occurrences share the branch PC and the taken-target.
        assert!(conds.windows(2).all(|w| w[0].pc == w[1].pc));
        assert!(conds.windows(2).all(|w| w[0].target == w[1].target));
        assert!(conds[0].taken);
        assert!(!conds[2].taken);
        // Target is the loop top (address 2).
        assert_eq!(conds[0].target, 2);
    }

    #[test]
    fn call_and_ret_traced() {
        let r = run("
            call f
            halt
            f: add 0(sp),$1
            ret
        ");
        let kinds: Vec<_> = r.trace.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![BranchKind::Call, BranchKind::Ret]);
        assert!(r.trace.iter().all(|e| e.taken));
    }

    #[test]
    fn opcode_histogram_matches_execution() {
        let r = run("
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$4
            ifjmpy.t top
            halt
        ");
        assert_eq!(r.stats.opcodes.get("move"), 1);
        assert_eq!(r.stats.opcodes.get("add"), 4);
        assert_eq!(r.stats.opcodes.get("cmp"), 4);
        assert_eq!(r.stats.opcodes.get("if-jump"), 4);
        assert_eq!(r.stats.opcodes.get("halt"), 1);
        assert_eq!(r.stats.opcodes.total(), r.stats.program_instrs);
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let img = assemble_text("top: jmp top").unwrap();
        let r = FunctionalSim::new(Machine::load(&img).unwrap())
            .max_steps(1000)
            .run()
            .unwrap();
        assert!(!r.halted);
        assert_eq!(r.halt_reason, HaltReason::Watchdog);
        assert!(r.stats.watchdog);
        // Work up to the limit is still counted.
        assert_eq!(r.stats.entries, 1000);
    }

    #[test]
    fn decode_error_reports_pc() {
        // Jump into a data word that is not a valid instruction.
        let img = assemble_text("jmp d\nd: .word 0x0000B800").unwrap();
        // 0xB800 >> 10 = 46 — unassigned opcode. The low parcel (0xB800)
        // is at the jump target... low parcel first: parcels[1]=0xB800.
        let err = FunctionalSim::new(Machine::load(&img).unwrap())
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Decode { .. }), "{err:?}");
    }
}

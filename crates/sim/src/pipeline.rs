//! The cycle-level Execution Unit pipeline, coupled to the PDU and the
//! Decoded Instruction Cache.
//!
//! Structure per the paper: "Instructions are read from the Decoded
//! Instruction Cache into the Instruction Register (IR) stage, operands
//! are accessed and placed into the Operand Register (OR) stage, then an
//! ALU operation takes place ... in the Result Register (RR) stage, and
//! finally the result write occurs." Sequencing is driven entirely by
//! the IR.Next-PC register, loaded from the cache entry's Next-PC field;
//! the Alternate Next-PC rides along with each conditional entry.
//!
//! Mispredict recovery reproduces the paper's cost model exactly:
//!
//! * compare **folded with** the branch → resolves at RR → 3 cycles lost;
//! * compare **one stage ahead** → resolves from OR.Alternate-PC → 2;
//! * compare **two stages ahead** → resolves from IR.Alternate-PC → 1;
//! * compare **three or more ahead** (left the pipeline) → the flag is
//!   compared against the prediction bit at cache-read time and the
//!   correct path followed → **0** cycles — the case Branch Spreading
//!   engineers for.
//!
//! Architectural state commits atomically at RR retire; wrong-path
//! entries occupy stages and are cancelled by clearing their valid bit
//! (legal because the ISA has no side effects before result write).

use crisp_isa::{Decoded, FoldClass, NextPc};

use crate::accounting::{BubbleCause, CycleAccounts};
use crate::config::FaultInjection;
use crate::geometry::{PipelineGeometry, StageHistogram, MAX_DEPTH, MIN_DEPTH};
use crate::observe::{DegradeUnit, NullObserver, PipeEvent, PipeObserver, StallKind};
use std::sync::Arc;

use crate::predecode::PredecodedImage;
use crate::predictor::HwPredictorState;
use crate::soft_error::FaultTarget;
use crate::stats::resolve_stage;
use crate::{CacheLookup, CycleStats, DecodedCache, HaltReason, Machine, Pdu, SimConfig, SimError};

/// One EU pipeline stage latch.
#[derive(Debug, Clone, Copy)]
struct Slot {
    d: Decoded,
    valid: bool,
    /// For conditional entries: direction already determined (either at
    /// cache-read time or by an early compare).
    resolved: bool,
    /// For conditional entries: the direction the fetch unit followed
    /// (the static bit, the dynamic predictor's guess, or — when
    /// resolved at cache-read time — the actual direction).
    followed: bool,
    /// For conditional entries: the path NOT followed, used for
    /// recovery on a mispredict.
    other: NextPc,
    /// For conditional entries guessed by a dynamic predictor: whether
    /// the guess was the table's *miss default* (no resident BTB /
    /// jump-trace entry) rather than a trained direction. Routes a
    /// later mispredict's bubbles to [`BubbleCause::BtbMiss`].
    guess_miss: bool,
    /// Fetch sequence number (slot identity for indirect-target waits).
    seq: u64,
}

/// A view of one EU stage for [`CycleSim::step`] consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageView {
    /// Address of the (host) instruction in the stage.
    pub pc: u32,
    /// Whether the slot is still valid (cleared by mispredict flushes).
    pub valid: bool,
    /// Whether the entry carries a folded branch.
    pub folded: bool,
}

/// A per-cycle snapshot of the pipeline, for visualisation and
/// debugging (see the `pipeline_view` example).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// The cycle this snapshot follows.
    pub cycle: u64,
    /// The IR.Next-PC register (`None` while waiting on an indirect
    /// target).
    pub fetch_pc: Option<u32>,
    /// EU stage latches, youngest first: `stages[0]` is the issue
    /// stage (IR on the paper's machine) and `stages[depth - 1]` is
    /// retire (RR). Entries at `depth..` are always `None`.
    pub stages: [Option<StageView>; MAX_DEPTH],
    /// Live EU depth (see [`crate::PipelineGeometry`]).
    pub depth: usize,
    /// Whether `halt` has retired.
    pub halted: bool,
}

impl PipelineSnapshot {
    /// The stage latch at `position` (0 = issue, `depth - 1` = retire);
    /// `None` past the live depth.
    pub fn stage(&self, position: usize) -> Option<StageView> {
        if position < self.depth {
            self.stages[position]
        } else {
            None
        }
    }

    /// The Instruction Register — the paper's name for the issue stage.
    pub fn ir(&self) -> Option<StageView> {
        self.stages[0]
    }

    /// The Operand Register — the paper's name for the second stage
    /// (`None` on a depth-2 pipe, which has no middle stage).
    pub fn or(&self) -> Option<StageView> {
        if self.depth > 2 {
            self.stages[1]
        } else {
            None
        }
    }

    /// The Result Register — the paper's name for the retire stage.
    pub fn rr(&self) -> Option<StageView> {
        self.stages[self.depth - 1]
    }
}

/// The result of a completed cycle-level run.
#[derive(Debug)]
pub struct CycleRun {
    /// Final architectural state.
    pub machine: Machine,
    /// Timing counters.
    pub stats: CycleStats,
    /// Whether the program reached `halt`.
    pub halted: bool,
    /// Why the run ended: [`HaltReason::Halted`] normally,
    /// [`HaltReason::Watchdog`] when a watchdog limit expired first.
    pub halt_reason: HaltReason,
}

/// The cycle-level simulator (Figure 1's machine).
///
/// Generic over a [`PipeObserver`] that receives the typed event
/// stream; the default [`NullObserver`] monomorphizes every emission
/// site away, so `CycleSim::new` costs nothing over the
/// uninstrumented model (the `sim_throughput` benchmark guards this).
#[derive(Debug)]
pub struct CycleSim<O: PipeObserver = NullObserver> {
    pub(crate) machine: Machine,
    pub(crate) cfg: SimConfig,
    pub(crate) cache: DecodedCache,
    pub(crate) pdu: Pdu,
    /// The front-end hot state (stage latches, sequencing registers,
    /// bubble provenance) — see [`PipeFront`].
    pub(crate) front: PipeFront,
    /// Live dynamic-prediction hardware, when configured (`None` for
    /// the shipped static-bit design, keeping its hot path untouched).
    pub(crate) predictor: Option<HwPredictorState>,
    /// The event sink.
    pub(crate) obs: O,
    /// Timing counters (public so callers can sample mid-run).
    pub stats: CycleStats,
}

/// The cycle engine's per-lane front-end hot state: EU stage latches,
/// sequencing registers, and bubble provenance.
///
/// Split out of [`CycleSim`] so the batched campaign kernel
/// ([`crate::batch::MachineBatch`]) can hold N of these in
/// structure-of-arrays form, stepping each lane against its own backing
/// state through [`PipeFront::cycle_once`]. The scalar simulator is the
/// one-lane specialization of the same code path.
#[derive(Debug, Clone)]
pub(crate) struct PipeFront {
    /// EU stage latches, youngest first: `stages[0]` is the issue
    /// stage (IR), `stages[depth - 1]` is retire (RR). Fixed capacity
    /// keeps the hot loop allocation-free at every geometry; only the
    /// live prefix `..depth` is ever touched.
    stages: [Option<Slot>; MAX_DEPTH],
    /// Live EU depth, cached out of `cfg.geometry`.
    depth: usize,
    /// The IR.Next-PC register; `None` while waiting for an indirect
    /// target to resolve at retire.
    fetch_pc: Option<u32>,
    /// Sequence number of the slot whose retirement will supply
    /// `fetch_pc` (indirect branches, returns).
    waiting_on: Option<u64>,
    next_seq: u64,
    /// The PC whose miss is currently being counted (so a multi-cycle
    /// stall counts as one miss).
    missing_pc: Option<u32>,
    /// The EU stall in progress, for paired stall begin/end events.
    stall: Option<StallKind>,
    /// Whether the configured [`SimConfig::fault_plan`] has fired (each
    /// plan injects exactly one transient fault).
    fault_done: bool,
    /// Bubble provenance, parallel to `stages` and clocked forward with
    /// them: why the latch at each position carries no useful work.
    /// Meaningful only where the stage latch is empty or invalid — a
    /// valid slot's entry is stale and ignored (and overwritten if the
    /// slot is later squashed).
    causes: [BubbleCause; MAX_DEPTH],
    /// Bubble cause of the mispredict that cancelled this cycle's
    /// fetch; read only while `kill_fetch` is set within a cycle, to
    /// tag the suppressed fetch slot's bubble.
    fetch_kill_cause: BubbleCause,
    /// PC whose decoded-cache entry was invalidated by a read-time
    /// parity check: the refill stall for that PC is accounted as
    /// parity recovery rather than an ordinary miss.
    parity_pc: Option<u32>,
}

/// Mutable borrows of one lane's backing state — everything a
/// [`PipeFront`] needs besides itself to advance a cycle. The scalar
/// engine builds one from its own fields; [`crate::batch::MachineBatch`]
/// builds one per lane from its parallel arrays.
pub(crate) struct LaneMut<'a, O: PipeObserver> {
    pub machine: &'a mut Machine,
    pub cache: &'a mut DecodedCache,
    pub pdu: &'a mut Pdu,
    pub predictor: &'a mut Option<HwPredictorState>,
    pub cfg: &'a SimConfig,
    pub stats: &'a mut CycleStats,
    pub obs: &'a mut O,
}

/// Whether a watchdog limit ([`SimConfig::max_cycles`] /
/// [`SimConfig::max_insns`]) has expired for the given counters.
pub(crate) fn watchdog_expired(cfg: &SimConfig, stats: &CycleStats) -> bool {
    stats.cycles >= cfg.max_cycles
        || cfg
            .max_insns
            .is_some_and(|limit| stats.program_instrs >= limit)
}

impl CycleSim {
    /// Build an uninstrumented simulator over a loaded machine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`SimConfig::validate`]).
    pub fn new(machine: Machine, cfg: SimConfig) -> CycleSim {
        CycleSim::with_observer(machine, cfg, NullObserver)
    }
}

impl<O: PipeObserver> CycleSim<O> {
    /// Build a simulator whose pipeline activity streams into `obs`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`SimConfig::validate`]).
    pub fn with_observer(machine: Machine, cfg: SimConfig, obs: O) -> CycleSim<O> {
        cfg.validate();
        let entry = machine.pc;
        let mut sim = CycleSim {
            machine,
            cfg,
            cache: DecodedCache::with_parity(cfg.icache_entries, cfg.parity),
            pdu: Pdu::new(
                cfg.fold_policy,
                cfg.mem_latency,
                cfg.pdu_pipe_delay,
                cfg.icache_entries as u32,
            ),
            front: PipeFront::new(entry, cfg.geometry),
            predictor: HwPredictorState::from_config(cfg.predictor),
            obs,
            stats: CycleStats {
                mispredicts_by_stage: StageHistogram::for_geometry(cfg.geometry),
                accounts: CycleAccounts::for_geometry(cfg.geometry),
                predicted_by: cfg.predictor.label(),
                ..CycleStats::default()
            },
        };
        sim.cache.set_degrade(cfg.degrade.map(|d| d.parity_limit));
        if let Some(p) = &mut sim.predictor {
            p.protect(cfg.parity, cfg.degrade);
        }
        sim.pdu.demand(entry);
        sim
    }

    /// Serve PDU refills from a shared predecode table instead of
    /// re-running `decode_and_fold` per miss (see
    /// [`Pdu::set_predecoded`]); timing is unchanged. Campaign drivers
    /// build one table per image × fold policy and share it across
    /// every case and both engines.
    ///
    /// # Panics
    ///
    /// If the table's fold policy differs from this simulator's
    /// configuration.
    pub fn set_predecoded(&mut self, table: Arc<PredecodedImage>) {
        self.pdu.set_predecoded(table);
    }

    /// Recover the machine for buffer reuse (see
    /// [`Machine::reset_from`]), dropping the pipeline state.
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// The pipeline geometry this simulation runs at.
    pub fn geometry(&self) -> PipelineGeometry {
        self.cfg.geometry
    }

    /// The observer (read-only view).
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The observer, mutably (e.g. to drain an event ring mid-run).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Run until `halt`, returning both the run result and the
    /// observer with everything it collected.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CycleSim::run`].
    pub fn run_observed(mut self) -> Result<(CycleRun, O), SimError> {
        loop {
            if self.watchdog_expired() {
                self.stats.watchdog = true;
                let run = CycleRun {
                    machine: self.machine,
                    stats: self.stats,
                    halted: false,
                    halt_reason: HaltReason::Watchdog,
                };
                return Ok((run, self.obs));
            }
            if self.cycle_once()? {
                let run = CycleRun {
                    machine: self.machine,
                    stats: self.stats,
                    halted: true,
                    halt_reason: HaltReason::Halted,
                };
                return Ok((run, self.obs));
            }
        }
    }

    /// Whether a watchdog limit ([`SimConfig::max_cycles`] /
    /// [`SimConfig::max_insns`]) has expired.
    fn watchdog_expired(&self) -> bool {
        watchdog_expired(&self.cfg, &self.stats)
    }

    /// Advance the machine by one clock cycle and return a snapshot of
    /// the pipeline, for cycle-by-cycle inspection. Returns
    /// `halted = true` once `halt` retires; further steps are no-ops.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CycleSim::run`].
    pub fn step(&mut self) -> Result<PipelineSnapshot, SimError> {
        let halted = if self.machine.halted {
            true
        } else {
            self.cycle_once()?
        };
        let view = |slot: &Option<Slot>| {
            slot.as_ref().map(|s| StageView {
                pc: s.d.pc,
                valid: s.valid,
                folded: s.d.folded,
            })
        };
        let mut stages = [None; MAX_DEPTH];
        for (out, latch) in stages.iter_mut().zip(&self.front.stages) {
            *out = view(latch);
        }
        Ok(PipelineSnapshot {
            cycle: self.stats.cycles,
            fetch_pc: self.front.fetch_pc,
            stages,
            depth: self.front.depth,
            halted,
        })
    }

    /// The architectural state (read-only view).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Consume the simulator after stepping to completion. A run
    /// abandoned before `halt` reports [`HaltReason::Watchdog`].
    pub fn into_run(self) -> CycleRun {
        let halted = self.machine.halted;
        CycleRun {
            machine: self.machine,
            stats: self.stats,
            halted,
            halt_reason: if halted {
                HaltReason::Halted
            } else {
                HaltReason::Watchdog
            },
        }
    }

    /// Run until `halt`, or until a watchdog limit expires (a graceful
    /// [`HaltReason::Watchdog`] end, not an error).
    ///
    /// # Errors
    ///
    /// * [`SimError::Decode`] when the architecturally-correct path
    ///   reaches bytes that do not decode;
    /// * [`SimError::MemOutOfBounds`] on wild data accesses.
    pub fn run(self) -> Result<CycleRun, SimError> {
        self.run_observed().map(|(run, _)| run)
    }

    /// Advance the machine by one clock cycle. Returns `true` on halt.
    fn cycle_once(&mut self) -> Result<bool, SimError> {
        let mut lane = LaneMut {
            machine: &mut self.machine,
            cache: &mut self.cache,
            pdu: &mut self.pdu,
            predictor: &mut self.predictor,
            cfg: &self.cfg,
            stats: &mut self.stats,
            obs: &mut self.obs,
        };
        self.front.cycle_once(&mut lane)
    }
}

/// Kill a stage's slot, counting it (and reporting the squash) if
/// it held a valid entry. A free function over disjoint fields so
/// callers can hold the observer alongside the stage latch. Returns
/// whether a valid entry was actually killed, so the caller can
/// re-tag the bubble's cause — an already-invalid slot keeps its
/// original cause (no double attribution).
fn kill_slot<O: PipeObserver>(
    slot: &mut Option<Slot>,
    flushed: &mut u64,
    cycle: u64,
    stage: u8,
    obs: &mut O,
) -> bool {
    if let Some(s) = slot {
        let was_valid = s.valid;
        if was_valid {
            *flushed += 1;
            if O::ENABLED {
                obs.event(PipeEvent::Squash {
                    cycle,
                    pc: s.d.pc,
                    stage,
                });
            }
        }
        s.valid = false;
        was_valid
    } else {
        false
    }
}

impl PipeFront {
    /// A fresh front end pointed at `entry`, for a pipe of the given
    /// geometry. Mirrors the reset state `CycleSim::with_observer`
    /// always established inline.
    pub(crate) fn new(entry: u32, geometry: PipelineGeometry) -> PipeFront {
        PipeFront {
            stages: [None; MAX_DEPTH],
            depth: geometry.depth(),
            fetch_pc: Some(entry),
            waiting_on: None,
            next_seq: 0,
            missing_pc: None,
            stall: None,
            fault_done: false,
            causes: [BubbleCause::Startup; MAX_DEPTH],
            fetch_kill_cause: BubbleCause::Startup,
            parity_pc: None,
        }
    }

    fn cc_writer_in_flight(&self) -> bool {
        self.stages[..self.depth]
            .iter()
            .flatten()
            .any(|s| s.valid && s.d.modifies_cc)
    }

    fn unresolved_branch_in_flight(&self) -> bool {
        self.stages[..self.depth]
            .iter()
            .flatten()
            .any(|s| s.valid && !s.resolved && matches!(s.d.fold, FoldClass::Cond { .. }))
    }

    /// Report a stall-state transition (begin, end, or kind change).
    fn sync_stall<O: PipeObserver>(&mut self, obs: &mut O, cycle: u64, now: Option<StallKind>) {
        if self.stall != now {
            if let Some(kind) = self.stall {
                obs.event(PipeEvent::StallEnd { cycle, kind });
            }
            if let Some(kind) = now {
                obs.event(PipeEvent::StallBegin { cycle, kind });
            }
            self.stall = now;
        }
    }

    /// Point fetch at the architectural continuation of a mispredicted
    /// branch: the already-known alternate when it is static, otherwise
    /// wait for the branch's own retirement to supply it.
    fn redirect_to(&mut self, alt: NextPc, branch_seq: u64) {
        match alt {
            NextPc::Known(a) => {
                self.fetch_pc = Some(a);
                self.waiting_on = None;
            }
            _ => {
                self.fetch_pc = None;
                self.waiting_on = Some(branch_seq);
            }
        }
    }

    /// Early-resolve the conditional branch at stage `pos` (0 = the
    /// issue stage; at the default geometry `pos` 1 is OR and 0 is IR),
    /// if its direction is now certain. Its resolve-point index — and
    /// mispredict penalty — is `pos + 1`. The caller guarantees no
    /// older pre-retire stage still holds a valid compare (the
    /// incremental blocker walk in `cycle_once`).
    #[inline]
    fn try_resolve<O: PipeObserver>(
        &mut self,
        lane: &mut LaneMut<'_, O>,
        cyc: u64,
        pos: usize,
        kill_fetch: &mut bool,
    ) {
        // Resolve in place: the slot stays latched in its stage and only
        // its resolution bits change. This runs every cycle for every
        // pre-retire stage, so a take/put-back of the whole slot would
        // be two wasted copies on the (overwhelmingly common)
        // nothing-to-resolve path.
        let Some(slot) = &mut self.stages[pos] else {
            return;
        };
        let FoldClass::Cond { on_true, .. } = slot.d.fold else {
            return;
        };
        if !slot.valid || slot.resolved || slot.d.modifies_cc {
            return;
        }
        let taken = lane.machine.psw.flag == on_true;
        slot.resolved = true;
        let seq = slot.seq;
        let other = slot.other;
        let branch_pc = slot.d.branch_pc.unwrap_or(slot.d.pc);
        let mispredicted = taken != slot.followed;
        let guess_miss = slot.guess_miss;
        let stage_idx = pos + 1;
        if O::ENABLED {
            lane.obs.event(PipeEvent::BranchResolve {
                cycle: cyc,
                branch_pc,
                stage: stage_idx as u8,
                mispredicted,
            });
        }
        if mispredicted {
            lane.stats.mispredicts_by_stage.bump(stage_idx);
            // A wrong guess that was only a predictor-table miss default
            // is cold/capacity behaviour, not trained-direction error:
            // its recovery bubbles get their own bucket.
            let cause = if guess_miss {
                BubbleCause::BtbMiss
            } else {
                BubbleCause::Branch(stage_idx as u8)
            };
            let mut flushed = 0;
            // Everything younger is wrong-path: the stages behind this
            // one (oldest first, matching retire-time squash order) and
            // this cycle's fetch.
            for q in (0..pos).rev() {
                if kill_slot(
                    &mut self.stages[q],
                    &mut flushed,
                    cyc,
                    (q + 1) as u8,
                    &mut *lane.obs,
                ) {
                    self.causes[q] = cause;
                }
            }
            *kill_fetch = true;
            self.fetch_kill_cause = cause;
            lane.stats.flushed_slots += flushed;
            self.redirect_to(other, seq);
        }
    }

    /// Advance one lane by one clock cycle. Returns `true` on halt.
    ///
    /// The paper's 3-stage geometry gets a monomorphized copy of the
    /// cycle body whose stage loops unroll at compile time — the
    /// parameterized engine then costs nothing over the original
    /// fixed-latch IR/OR/RR implementation at the default depth (the
    /// `bench_sim` throughput gate guards this). Every other depth
    /// shares the one dynamic copy. The per-cycle dispatch branch is
    /// perfectly predicted: `depth` never changes during a run.
    pub(crate) fn cycle_once<O: PipeObserver>(
        &mut self,
        lane: &mut LaneMut<'_, O>,
    ) -> Result<bool, SimError> {
        if self.depth == 3 {
            self.cycle_once_at::<3, O>(lane)
        } else {
            self.cycle_once_at::<0, O>(lane)
        }
    }

    /// One clock cycle at EU depth `D`, where `D == 0` means "read the
    /// live depth at run time" (the generic fallback).
    fn cycle_once_at<const D: usize, O: PipeObserver>(
        &mut self,
        lane: &mut LaneMut<'_, O>,
    ) -> Result<bool, SimError> {
        // Pin the live depth to the latch array's capacity once per
        // cycle: the construction invariant (`PipelineGeometry::new`
        // range-checks) guarantees it holds, and stating it here lets
        // the stage indexing below compile without per-access bounds
        // checks. When `D` is a real depth the pin const-folds away.
        let depth = if D == 0 { self.depth } else { D };
        assert!(
            (MIN_DEPTH..=MAX_DEPTH).contains(&depth),
            "geometry invariant"
        );
        let cyc = lane.stats.cycles;
        lane.stats.cycles += 1;
        let mut kill_fetch = false;

        // ---- Top-down cycle accounting. ---- Attribute this cycle by
        // what the retire latch is about to do: a valid entry retiring
        // is useful work; anything else is a bubble whose cause rode
        // along in `causes`. Done before anything mutates the latches,
        // so every exit path below (including halt) is covered and the
        // conservation invariant holds cycle-by-cycle.
        match &self.stages[depth - 1] {
            Some(slot) if slot.valid => lane.stats.accounts.useful += 1,
            _ => lane.stats.accounts.bubble(self.causes[depth - 1]),
        }
        debug_assert_eq!(
            lane.stats.accounts.total(),
            lane.stats.cycles,
            "cycle accounting must conserve cycles"
        );

        // ---- 0. Transient-fault injection (soft-error model). ----
        if let Some(plan) = lane.cfg.fault_plan {
            if !self.fault_done && cyc >= plan.cycle {
                let struck = match plan.target {
                    // A strike on an empty cache slot is a no-op: the
                    // particle lands in invalid state. The plan is spent
                    // either way — cache slots always exist, so the
                    // strike happened even if nothing flipped.
                    FaultTarget::Cache => {
                        self.fault_done = true;
                        lane.cache.corrupt(plan.slot as usize, plan.field)
                    }
                    // Predictor tables and PDU fold slots are often
                    // empty at any given instant: the strike stays
                    // armed until the structure first holds state (a
                    // particle that never finds a victim is a trivially
                    // masked run). The static bit has no hardware state
                    // at all, so the plan is spent immediately.
                    FaultTarget::Predictor => match lane.predictor.as_mut() {
                        Some(p) if p.has_state() => {
                            self.fault_done = true;
                            p.corrupt(plan.slot, plan.field)
                        }
                        Some(_) => None,
                        None => {
                            self.fault_done = true;
                            None
                        }
                    },
                    FaultTarget::Pdu => {
                        if lane.pdu.inflight_len() > 0 {
                            self.fault_done = true;
                            lane.pdu.corrupt(plan.slot, plan.field)
                        } else {
                            None
                        }
                    }
                };
                if let Some(pc) = struck {
                    lane.stats.faults_injected += 1;
                    if O::ENABLED {
                        lane.obs.event(PipeEvent::FaultInject {
                            cycle: cyc,
                            slot: plan.slot,
                            pc,
                        });
                    }
                }
            }
        }

        // ---- 1. Retire stage (RR): commit and retire. ----
        // The slot is read in place (it is overwritten when the stages
        // clock forward below) rather than moved out: retirement happens
        // every cycle and the slot is the widest structure in the loop.
        // The split gives simultaneous access to the retire latch and
        // the younger stages it may squash.
        let (younger, retire) = self.stages.split_at_mut(depth - 1);
        if let Some(slot) = &retire[0] {
            if slot.valid {
                let step = lane
                    .machine
                    .execute_observed(&slot.d, cyc, &mut *lane.obs)?;
                lane.stats.issued += 1;
                lane.stats.program_instrs += 1 + u64::from(slot.d.folded);
                if let FoldClass::Cond { predict_taken, .. } = slot.d.fold {
                    lane.stats.cond_branches += 1;
                    let taken = step.taken.expect("conditional step reports direction");
                    // Shadow score of the compiler's static bit over the
                    // same retired branch stream, independent of which
                    // predictor actually drove the fetch — the basis of
                    // the per-predictor mispredict split in the stats.
                    if taken != predict_taken {
                        lane.stats.static_bit_mispredicts += 1;
                    }
                    if let Some(p) = lane.predictor.as_mut() {
                        p.train(slot.d.branch_pc.unwrap_or(slot.d.pc), taken);
                    }
                    if !slot.resolved {
                        // Resolved only now — the folded-compare case.
                        let mispredicted = taken != slot.followed;
                        if O::ENABLED {
                            lane.obs.event(PipeEvent::BranchResolve {
                                cycle: cyc,
                                branch_pc: slot.d.branch_pc.unwrap_or(slot.d.pc),
                                stage: lane.cfg.geometry.retire_stage() as u8,
                                mispredicted,
                            });
                        }
                        if mispredicted {
                            // Every younger stage dies (plus this
                            // cycle's fetch): `depth` slots in total.
                            let retire_stage = lane.cfg.geometry.retire_stage();
                            lane.stats.mispredicts_by_stage.bump(retire_stage);
                            let cause = if slot.guess_miss {
                                BubbleCause::BtbMiss
                            } else {
                                BubbleCause::Branch(retire_stage as u8)
                            };
                            let mut flushed = 0;
                            for (q, latch) in younger.iter_mut().enumerate().rev() {
                                // The planted SkipOrSquash bug skips the
                                // stage just behind retire (OR on the
                                // paper's machine).
                                if q == depth - 2
                                    && lane.cfg.fault == Some(FaultInjection::SkipOrSquash)
                                {
                                    continue;
                                }
                                if kill_slot(
                                    latch,
                                    &mut flushed,
                                    cyc,
                                    (q + 1) as u8,
                                    &mut *lane.obs,
                                ) {
                                    self.causes[q] = cause;
                                }
                            }
                            lane.stats.flushed_slots += flushed;
                            kill_fetch = true;
                            self.fetch_kill_cause = cause;
                            self.fetch_pc = Some(step.next_pc);
                            self.waiting_on = None;
                        }
                    }
                }
                if self.waiting_on == Some(slot.seq) {
                    // This retirement supplies the pending indirect target.
                    self.waiting_on = None;
                    self.fetch_pc = Some(step.next_pc);
                }
                if step.halted {
                    if O::ENABLED {
                        // Close any open stall so begin/end pairs match
                        // the stall-cycle counters exactly.
                        self.sync_stall(&mut *lane.obs, cyc, None);
                    }
                    // Normally the stage clocking below consumes this
                    // slot; on halt, empty it explicitly so snapshots
                    // show a drained RR.
                    self.stages[depth - 1] = None;
                    return Ok(true);
                }
            }
        }

        // ---- 2. Early resolution: oldest pre-retire stage first (OR
        // then IR on the paper's machine). ---- A stage is blocked while
        // an older pre-retire stage still holds a valid compare; one
        // oldest-first walk carries that blocker incrementally instead
        // of rescanning the older stages at every position.
        let mut blocked = false;
        for pos in (0..depth - 1).rev() {
            if !blocked {
                self.try_resolve(lane, cyc, pos, &mut kill_fetch);
            }
            if let Some(s) = &self.stages[pos] {
                blocked |= s.valid && s.d.modifies_cc;
            }
        }

        // ---- 3. Clock the stages forward (bubble causes ride along
        // with their latches). ----
        for i in (1..depth).rev() {
            self.stages[i] = self.stages[i - 1].take();
            self.causes[i] = self.causes[i - 1];
        }

        // ---- 4. Fetch into the issue stage (IR) from the decoded
        // cache. ----
        self.stages[0] = None;
        let mut stalled: Option<StallKind> = None;
        if kill_fetch {
            // The slot being clocked into IR this edge was cancelled:
            // one more bubble charged to the resolving branch.
            self.causes[0] = self.fetch_kill_cause;
        } else if let Some(pc) = self.fetch_pc {
            // The hit entry is latched (copied) into the IR slot here —
            // the one purposeful copy-out of the borrow
            // `lookup_verified` returns, mirroring the hardware latch
            // at the cache read port.
            let looked_up = match lane.cache.lookup_verified(pc) {
                CacheLookup::Hit(d) => Some(*d),
                CacheLookup::ParityError => {
                    // A protected entry failed its parity check at read
                    // time: the cache invalidated it, so fetch falls into
                    // the ordinary miss path below and the PDU redecodes
                    // the entry from memory.
                    if O::ENABLED {
                        lane.obs.event(PipeEvent::ParityError {
                            cycle: cyc,
                            pc,
                            slot: lane.cache.slot_of(pc) as u32,
                        });
                    }
                    self.parity_pc = Some(pc);
                    None
                }
                CacheLookup::Miss => None,
            };
            if let Some(d) = looked_up {
                lane.stats.icache_hits += 1;
                if O::ENABLED {
                    lane.obs.event(PipeEvent::FetchHit {
                        cycle: cyc,
                        pc,
                        folded: d.folded,
                    });
                }
                self.missing_pc = None;
                self.parity_pc = None;
                let seq = self.next_seq;
                self.next_seq += 1;
                let mut slot = Slot {
                    d,
                    valid: true,
                    resolved: false,
                    followed: false,
                    other: d.next_pc,
                    guess_miss: false,
                    seq,
                };
                let mut chosen = d.next_pc;
                if let FoldClass::Cond {
                    on_true,
                    predict_taken,
                } = d.fold
                {
                    // Decoding always gives conditional entries an
                    // alternate; only a corrupted entry (soft_error)
                    // lacks one, and then both paths collapse onto
                    // Next-PC.
                    let alt = d.alt_pc.unwrap_or(d.next_pc);
                    // The hardware's guess: the static bit, or the live
                    // dynamic predictor when configured. `guess` must be
                    // a read-only lookup — training happens at retire —
                    // or wrong-path fetches and in-flight repeats of a
                    // tight loop would desynchronize the table from the
                    // trace-driven reference models (see
                    // `crate::predictor`).
                    let branch_pc = d.branch_pc.unwrap_or(d.pc);
                    // A fully-degraded table (every way disabled by the
                    // degrade policy) answers nothing useful; the engine
                    // falls back to the compiler's static bit, exactly
                    // as if no hardware predictor were fitted.
                    let live_predictor = lane.predictor.as_ref().filter(|p| !p.fully_degraded());
                    let (guess, guess_miss) = match live_predictor {
                        None => (predict_taken, false),
                        Some(p) => p.guess(branch_pc),
                    };
                    slot.guess_miss = guess_miss;
                    if O::ENABLED && live_predictor.is_some() {
                        lane.obs.event(PipeEvent::Predict {
                            cycle: cyc,
                            branch_pc,
                            guess,
                            miss: guess_miss,
                        });
                    }
                    // Zero-cost resolution at cache-read time: no compare
                    // anywhere in the pipeline means the flag is final.
                    if !d.modifies_cc && !self.cc_writer_in_flight() {
                        let taken = lane.machine.psw.flag == on_true;
                        slot.resolved = true;
                        slot.followed = taken;
                        lane.stats.resolved_at_fetch += 1;
                        if O::ENABLED {
                            lane.obs.event(PipeEvent::BranchResolve {
                                cycle: cyc,
                                branch_pc: d.branch_pc.unwrap_or(d.pc),
                                stage: resolve_stage::FETCH as u8,
                                mispredicted: guess != taken,
                            });
                        }
                        if guess != taken {
                            // Wrong guess, but zero cycles lost: "the
                            // conditional branch has effectively been
                            // turned into an unconditional branch".
                            lane.stats.mispredicts_by_stage.bump(resolve_stage::FETCH);
                        }
                        // Follow the actual direction. The Next-PC field
                        // holds the static-bit path; swap when needed.
                        chosen = if taken == predict_taken {
                            d.next_pc
                        } else {
                            alt
                        };
                    } else {
                        slot.followed = guess;
                        let (c, o) = if guess == predict_taken {
                            (d.next_pc, alt)
                        } else {
                            (alt, d.next_pc)
                        };
                        chosen = c;
                        slot.other = o;
                    }
                }
                match chosen {
                    NextPc::Known(n) => self.fetch_pc = Some(n),
                    _ => {
                        self.fetch_pc = None;
                        self.waiting_on = Some(seq);
                    }
                }
                self.stages[0] = Some(slot);
            } else {
                if self.missing_pc != Some(pc) {
                    self.missing_pc = Some(pc);
                    lane.stats.icache_misses += 1;
                    if O::ENABLED {
                        lane.obs.event(PipeEvent::FetchMiss { cycle: cyc, pc });
                    }
                }
                lane.stats.miss_stall_cycles += 1;
                stalled = Some(StallKind::Miss);
                self.causes[0] = if self.parity_pc == Some(pc) {
                    BubbleCause::ParityRecovery
                } else {
                    BubbleCause::MissRefill
                };
                // Check for a decode failure at this address *before*
                // re-demanding (demand clears the failure latch). If no
                // branch in flight can still redirect us, the failing
                // address is the real path.
                if let Some((fpc, e)) = lane.pdu.failure() {
                    if *fpc == pc && !self.unresolved_branch_in_flight() {
                        return Err(SimError::Decode {
                            pc,
                            source: e.clone(),
                        });
                    }
                }
                lane.pdu.demand(pc);
            }
        } else {
            lane.stats.indirect_stall_cycles += 1;
            stalled = Some(StallKind::Indirect);
            self.causes[0] = BubbleCause::Indirect;
        }
        if O::ENABLED {
            self.sync_stall(&mut *lane.obs, cyc, stalled);
        }

        // ---- 5. PDU cycle. ---- An idle PDU (parked, nothing in the
        // PIR pipeline) cannot change the cache or any counter, so the
        // captured-loop steady state skips it outright.
        if !lane.pdu.is_idle() {
            lane.pdu
                .tick_observed(cyc, &lane.machine.mem, &mut *lane.cache, &mut *lane.obs);
            lane.stats.pdu_decodes = lane.pdu.decodes;
            lane.stats.cache_inserts = lane.cache.inserts;
            lane.stats.cache_refills = lane.cache.refills;
            lane.stats.cache_evictions = lane.cache.evictions;
            lane.stats.parity_invalidates = lane.cache.parity_invalidates;
        }

        // ---- 6. Degrade-policy drain. ---- Gated on the config so the
        // common (no-degrade) run pays one branch per cycle. Units
        // disabled this cycle — cache slots at the fetch-port parity
        // check, BTB ways at the train-port scrub — become events and a
        // stat here.
        if lane.cfg.degrade.is_some() {
            while let Some(way) = lane.cache.take_degraded() {
                lane.stats.degraded_ways += 1;
                if O::ENABLED {
                    lane.obs.event(PipeEvent::Degrade {
                        cycle: cyc,
                        unit: DegradeUnit::Cache,
                        way,
                    });
                }
            }
            if let Some(p) = lane.predictor.as_mut() {
                while let Some(way) = p.take_degraded() {
                    lane.stats.degraded_ways += 1;
                    if O::ENABLED {
                        lane.obs.event(PipeEvent::Degrade {
                            cycle: cyc,
                            unit: DegradeUnit::Btb,
                            way,
                        });
                    }
                }
            }
        }
        if let Some(p) = lane.predictor.as_ref() {
            lane.stats.parity_scrubs = p.parity_scrubs();
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionalSim;
    use crisp_asm::assemble_text;

    fn run_cfg(src: &str, cfg: SimConfig) -> CycleRun {
        let img = assemble_text(src).unwrap();
        CycleSim::new(Machine::load(&img).unwrap(), cfg)
            .run()
            .unwrap()
    }

    fn run(src: &str) -> CycleRun {
        run_cfg(src, SimConfig::default())
    }

    #[test]
    fn straight_line_executes_and_halts() {
        let r = run("
            mov 0(sp),$1
            add 0(sp),$2
            add 0(sp),$3
            halt
        ");
        assert!(r.halted);
        assert_eq!(r.machine.mem.read_word(r.machine.sp).unwrap(), 6);
        assert_eq!(r.stats.issued, 4);
        assert_eq!(r.stats.program_instrs, 4);
    }

    #[test]
    fn matches_functional_results() {
        let src = "
            mov 0(sp),$0
            mov 4(sp),$0
        top:
            add 4(sp),0(sp)
            add 0(sp),$1
            cmp.s< 0(sp),$20
            ifjmpy.t top
            mov Accum,4(sp)
            halt
        ";
        let img = assemble_text(src).unwrap();
        let f = FunctionalSim::new(Machine::load(&img).unwrap())
            .run()
            .unwrap();
        let c = CycleSim::new(Machine::load(&img).unwrap(), SimConfig::default())
            .run()
            .unwrap();
        assert_eq!(f.machine.accum, c.machine.accum);
        assert_eq!(f.machine.sp, c.machine.sp);
        assert_eq!(f.stats.program_instrs, c.stats.program_instrs);
        assert_eq!(f.stats.entries, c.stats.issued);
    }

    // ---- The paper's penalty schedule ----

    #[test]
    fn folded_compare_mispredict_resolves_at_rr() {
        // cmp folded with its branch; prediction bit wrong.
        // Flag: Accum(0) == 0 → true; ifjmpn (branch if false) predicted
        // taken → mispredict, resolvable only at RR.
        let r = run("
            nop
            cmp.= Accum,$0
            ifjmpn.t skip
            nop
        skip:
            halt
        ");
        assert_eq!(r.stats.mispredicts_by_stage, [0, 0, 0, 1]);
    }

    #[test]
    fn compare_one_ahead_resolves_at_or() {
        // Folding disabled so cmp and branch are separate entries,
        // immediately adjacent: the branch is one stage behind.
        let r = run_cfg(
            "
            nop
            cmp.= Accum,$0
            ifjmpn.t skip
            nop
        skip:
            halt
        ",
            SimConfig::without_folding(),
        );
        assert_eq!(r.stats.mispredicts_by_stage, [0, 0, 1, 0]);
    }

    #[test]
    fn compare_two_ahead_resolves_at_ir() {
        // One independent instruction between cmp and branch
        // (folding off keeps the distance exact).
        let r = run_cfg(
            "
            nop
            cmp.= Accum,$0
            add 0(sp),$1
            ifjmpn.t skip
            nop
        skip:
            halt
        ",
            SimConfig::without_folding(),
        );
        assert_eq!(r.stats.mispredicts_by_stage, [0, 1, 0, 0]);
    }

    #[test]
    fn compare_three_ahead_costs_nothing() {
        // Two instructions between cmp and branch: the compare has left
        // the pipeline when the branch is read from the cache, so the
        // wrong prediction bit costs zero cycles.
        let r = run_cfg(
            "
            nop
            cmp.= Accum,$0
            add 0(sp),$1
            add 4(sp),$1
            ifjmpn.t skip
            nop
        skip:
            halt
        ",
            SimConfig::without_folding(),
        );
        assert_eq!(r.stats.mispredicts_by_stage, [1, 0, 0, 0]);
        assert!(r.stats.resolved_at_fetch >= 1);
    }

    #[test]
    fn penalty_cycles_match_the_schedule() {
        // Same program, mispredict penalty varied by compare distance;
        // cycle counts must differ by exactly the schedule (3/2/1/0).
        let base = "
            nop
            cmp.= Accum,$0
            {SPREAD}
            ifjmpn.t skip
            nop
        skip:
            halt
        ";
        let cycles = |spread: &str, cfg: SimConfig| {
            run_cfg(&base.replace("{SPREAD}", spread), cfg).stats.cycles
        };
        let nf = SimConfig::without_folding();
        // Distance 3+: zero penalty. Reference point.
        let c3 = cycles("add 0(sp),$1\n add 4(sp),$1", nf);
        // Distance 2: one cycle. One less instruction in the pipeline,
        // so an equal-cycle program would be c3 - 1; the penalty adds 1.
        let c2 = cycles("add 0(sp),$1", nf);
        assert_eq!(c2, c3 - 1 + 1, "c2={c2} c3={c3}");
        // Distance 1 (adjacent): two cycles.
        let c1 = cycles("", nf);
        assert_eq!(c1, c3 - 2 + 2, "c1={c1} c3={c3}");
        // Folded (distance 0): three cycles; folding also removes the
        // branch's own slot.
        let c0 = cycles("", SimConfig::default());
        assert_eq!(c0, c3 - 3 + 3, "c0={c0} c3={c3}");
    }

    #[test]
    fn penalty_schedule_covers_every_fold_policy() {
        use crisp_isa::FoldPolicy;
        // For each policy, resolve a mispredicted branch at every
        // compare distance and check (a) the resolving stage and (b)
        // that the per-mispredict cycle penalty equals the stage index
        // — the `resolve_stage` invariant.
        //
        // (a) uses a one-shot forward branch with the prediction bit
        // wrong; the stage comes straight from `mispredicts_by_stage`.
        let stage_of = |spread: &str, policy: FoldPolicy| {
            // Flag is true (Accum == 0) and ifjmpn branches on false:
            // not taken, so predicting taken is wrong.
            let src = format!(
                "
                nop
                cmp.= Accum,$0
                {spread}
                ifjmpn.t skip
                nop
            skip:
                halt
            "
            );
            let cfg = SimConfig {
                fold_policy: policy,
                ..SimConfig::default()
            };
            let r = run_cfg(&src, cfg);
            let stages = r.stats.mispredicts_by_stage;
            assert_eq!(stages.total(), 1, "{policy:?} {spread:?}");
            stages.as_slice().iter().position(|&c| c == 1).unwrap()
        };
        // (b) measures steady state, where every path is cache-hot and
        // the cost is pure recovery: a 24-iteration loop whose back
        // branch is predicted right (one exit mispredict) vs wrong
        // (23). The cycle delta is 22 penalties plus a ±few-cycle
        // cold-start difference, so rounding to the nearest multiple
        // recovers the schedule unambiguously. The counter lives in the
        // accumulator because only `cmp.cond Accum,imm5` is one parcel
        // — the folded-compare case needs a one-parcel host.
        let penalty_of = |spread: &str, policy: FoldPolicy| {
            let src_with = |bit: &str| {
                format!(
                    "
                    mov Accum,$0
                top:
                    add Accum,$1
                    cmp.s< Accum,$24
                    {spread}
                    ifjmpy.{bit} top
                    halt
                "
                )
            };
            let cfg = SimConfig {
                fold_policy: policy,
                ..SimConfig::default()
            };
            let wrong = run_cfg(&src_with("nt"), cfg);
            let right = run_cfg(&src_with("t"), cfg);
            assert!(wrong.stats.mispredicts() >= 23);
            let delta = wrong.stats.cycles as i64 - right.stats.cycles as i64;
            usize::try_from(((delta + 11).div_euclid(22)).max(0)).unwrap()
        };
        let check = |spread: &str, policy: FoldPolicy, expect: usize| {
            assert_eq!(stage_of(spread, policy), expect, "{policy:?} {spread:?}");
            assert_eq!(
                penalty_of(spread, policy),
                expect,
                "penalty must equal the stage index ({policy:?}, {spread:?})"
            );
        };

        // Fillers keep clear of the flag and of the accumulator (the
        // penalty loop's counter).
        let narrow = [
            "",
            "add 8(sp),$1",
            "add 8(sp),$1\n add 12(sp),$1",
            "add 8(sp),$1\n add 12(sp),$1\n add 16(sp),$1",
        ];
        // Unfolded: the branch occupies its own slot, so an adjacent
        // compare is one stage ahead (OR), and so on down the schedule.
        let none_expect = [
            resolve_stage::OR,
            resolve_stage::IR,
            resolve_stage::FETCH,
            resolve_stage::FETCH,
        ];
        for (spread, expect) in narrow.iter().zip(none_expect) {
            check(spread, FoldPolicy::None, expect);
        }
        // Any folding policy: one-parcel hosts fold, so the last
        // pre-branch instruction absorbs the branch, pulling every
        // distance one stage later — RR for the folded compare itself.
        let fold_expect = [
            resolve_stage::RR,
            resolve_stage::OR,
            resolve_stage::IR,
            resolve_stage::FETCH,
        ];
        for policy in [FoldPolicy::Host1, FoldPolicy::Host13, FoldPolicy::All] {
            for (spread, expect) in narrow.iter().zip(fold_expect) {
                check(spread, policy, expect);
            }
        }
        // A three-parcel host (long immediate — an absolute operand
        // would cost *two* extension parcels, making the instruction
        // five parcels) before the branch: Host1 cannot fold it,
        // Host13/All can.
        let wide3 = "add 8(sp),$64";
        check(wide3, FoldPolicy::None, resolve_stage::IR);
        check(wide3, FoldPolicy::Host1, resolve_stage::IR);
        check(wide3, FoldPolicy::Host13, resolve_stage::OR);
        check(wide3, FoldPolicy::All, resolve_stage::OR);
        // A five-parcel (two absolute operands) host: only All folds it.
        let wide5 = "mov *0x10000,*0x10004";
        check(wide5, FoldPolicy::Host13, resolve_stage::IR);
        check(wide5, FoldPolicy::All, resolve_stage::OR);
    }

    #[test]
    fn deeper_pipes_resolve_folded_compares_at_retire() {
        use crate::geometry::PipelineGeometry;
        // The folded-compare mispredict resolves at the retire stage,
        // whose resolve index — and penalty — is the EU depth itself.
        for depth in [2usize, 3, 4, 5, 6] {
            let cfg = SimConfig {
                geometry: PipelineGeometry::new(depth),
                ..SimConfig::default()
            };
            let r = run_cfg(
                "
                nop
                cmp.= Accum,$0
                ifjmpn.t skip
                nop
            skip:
                halt
            ",
                cfg,
            );
            assert_eq!(
                r.stats.mispredicts_by_stage.len(),
                depth + 1,
                "depth {depth}"
            );
            assert_eq!(r.stats.mispredicts(), 1, "depth {depth}");
            assert_eq!(
                r.stats.mispredicts_by_stage[depth], 1,
                "depth {depth}: {:?}",
                r.stats.mispredicts_by_stage
            );
        }
    }

    #[test]
    fn spreading_distance_needed_for_free_resolution_scales_with_depth() {
        use crate::geometry::PipelineGeometry;
        // With folding off, a compare spread `d` entries ahead of its
        // branch resolves at stage `max(0, depth - d)` — deeper pipes
        // need more spreading to reach the free fetch-time resolution.
        for depth in [2usize, 3, 5] {
            let geo = PipelineGeometry::new(depth);
            for distance in 1..=depth + 1 {
                let filler = (0..distance - 1)
                    .map(|i| format!("add {}(sp),$1\n", 8 + 4 * i))
                    .collect::<String>();
                let src = format!(
                    "
                    nop
                    cmp.= Accum,$0
                    {filler}
                    ifjmpn.t skip
                    nop
                skip:
                    halt
                "
                );
                let cfg = SimConfig {
                    geometry: geo,
                    fold_policy: crisp_isa::FoldPolicy::None,
                    ..SimConfig::default()
                };
                let r = run_cfg(&src, cfg);
                let expect = geo.resolve_stage_for_distance(distance);
                assert_eq!(r.stats.mispredicts(), 1, "D={depth} d={distance}");
                assert_eq!(
                    r.stats.mispredicts_by_stage[expect], 1,
                    "D={depth} d={distance}: {:?}",
                    r.stats.mispredicts_by_stage
                );
            }
        }
    }

    #[test]
    fn every_depth_computes_the_same_result() {
        use crate::geometry::{PipelineGeometry, MAX_DEPTH, MIN_DEPTH};
        let src = "
            mov 0(sp),$0
            mov 4(sp),$0
        top:
            add 4(sp),0(sp)
            add 0(sp),$1
            cmp.s< 0(sp),$30
            ifjmpy.t top
            mov Accum,4(sp)
            halt
        ";
        let base = run(src);
        for depth in MIN_DEPTH..=MAX_DEPTH {
            let cfg = SimConfig {
                geometry: PipelineGeometry::new(depth),
                ..SimConfig::default()
            };
            let r = run_cfg(src, cfg);
            assert!(r.halted, "depth {depth}");
            assert_eq!(r.machine.accum, base.machine.accum, "depth {depth}");
            assert_eq!(r.machine.sp, base.machine.sp, "depth {depth}");
            assert_eq!(
                r.stats.program_instrs, base.stats.program_instrs,
                "depth {depth}"
            );
            // A deeper pipe can only make the mispredicted loop exit
            // more expensive.
            if depth > 3 {
                assert!(r.stats.cycles >= base.stats.cycles, "depth {depth}");
            }
        }
    }

    #[test]
    fn correct_prediction_costs_nothing() {
        // Predicted-taken backward branch, taken every time: steady
        // state issues one entry per cycle.
        let r = run("
            mov 0(sp),$0
        top:
            add 0(sp),$1
            add 4(sp),$2
            mov 8(sp),4(sp)
            cmp.s< 0(sp),$200
            ifjmpy.t top
            halt
        ");
        // 4 entries per iteration (cmp folds the branch), 200 iterations.
        let steady = r.stats.issued as f64;
        let cpi = r.stats.cycles as f64 / steady;
        assert!(cpi < 1.1, "steady-state CPI should approach 1, got {cpi}");
        // Exactly one mispredict: the loop exit (resolved at RR since
        // cmp is folded with the branch).
        assert_eq!(r.stats.mispredicts(), 1);
    }

    #[test]
    fn folding_reduces_issued_but_not_program_instrs() {
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$50
            ifjmpy.t top
            halt
        ";
        let fold = run_cfg(src, SimConfig::default());
        let nofold = run_cfg(src, SimConfig::without_folding());
        assert_eq!(fold.stats.program_instrs, nofold.stats.program_instrs);
        // 50 folded branches disappear from the issue stream.
        assert_eq!(nofold.stats.issued - fold.stats.issued, 50);
        assert!(fold.stats.cycles < nofold.stats.cycles);
        // Apparent CPI dips below issued CPI when folding is on.
        assert!(fold.stats.apparent_cpi() < fold.stats.cycles_per_issued());
    }

    #[test]
    fn indirect_jump_stalls_then_proceeds() {
        let r = run("
            mov *0x10000,$12
            jmp *0x10000
            nop
            nop
            nop
            nop      ; byte 12: target
            halt
        ");
        assert!(r.halted);
        assert!(r.stats.indirect_stall_cycles >= 1);
    }

    #[test]
    fn call_and_return_work_under_timing() {
        let r = run("
            mov 0(sp),$5
            call f
            mov 4(sp),Accum
            halt
        f:
            enter 8
            mov Accum,$7
            leave 8
            ret
        ");
        assert!(r.halted);
        assert_eq!(r.machine.accum, 7);
        assert_eq!(r.machine.mem.read_word(r.machine.sp + 4).unwrap(), 7);
    }

    #[test]
    fn step_api_exposes_pipeline_flow() {
        let img = assemble_text(
            "
            mov 0(sp),$1
            add 0(sp),$2
            add 0(sp),$3
            halt
            ",
        )
        .unwrap();
        let mut sim = CycleSim::new(Machine::load(&img).unwrap(), SimConfig::default());
        let mut snaps = Vec::new();
        for _ in 0..100 {
            let s = sim.step().unwrap();
            let done = s.halted;
            snaps.push(s);
            if done {
                break;
            }
        }
        assert!(snaps.last().unwrap().halted);
        // The mov (pc 0) must appear in IR, then OR, then RR.
        let find = |f: fn(&PipelineSnapshot) -> Option<StageView>| {
            snaps.iter().position(|s| f(s).map(|v| v.pc) == Some(0))
        };
        let ir_at = find(|s| s.ir()).expect("mov reaches IR");
        let or_at = find(|s| s.or()).expect("mov reaches OR");
        let rr_at = find(|s| s.rr()).expect("mov reaches RR");
        assert_eq!(or_at, ir_at + 1);
        assert_eq!(rr_at, or_at + 1);
        // Architectural result via the read-only accessor + into_run.
        assert_eq!(sim.machine().mem.read_word(sim.machine().sp).unwrap(), 6);
        let run = sim.into_run();
        assert!(run.halted);
        assert!(run.stats.cycles > 0);
    }

    #[test]
    fn step_shows_folded_entries() {
        let img = assemble_text(
            "
            top: add 0(sp),$1
                 ifjmpy.nt top
                 halt
            ",
        )
        .unwrap();
        let mut sim = CycleSim::new(Machine::load(&img).unwrap(), SimConfig::default());
        let mut saw_folded = false;
        for _ in 0..50 {
            let s = sim.step().unwrap();
            if s.ir().is_some_and(|v| v.folded) {
                saw_folded = true;
            }
            if s.halted {
                break;
            }
        }
        assert!(saw_folded, "folded entry should appear in IR");
    }

    #[test]
    fn cold_start_misses_then_hits() {
        let r = run("
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$100
            ifjmpy.t top
            halt
        ");
        assert!(r.stats.icache_misses >= 1);
        // Steady state: hits dominate (hundreds of fetches, few misses).
        assert!(r.stats.icache_hits > 50 * r.stats.icache_misses);
    }

    #[test]
    fn tiny_cache_thrashes() {
        // A loop longer than the cache must keep missing.
        let mut body = String::from("mov 0(sp),$0\ntop:\n");
        for i in 0..24 {
            body.push_str(&format!("add {}(sp),$1\n", 4 * (i % 8)));
        }
        body.push_str("add 0(sp),$1\ncmp.s< 0(sp),$50\nifjmpy.t top\nhalt\n");
        let big = run_cfg(
            &body,
            SimConfig {
                icache_entries: 64,
                ..SimConfig::default()
            },
        );
        let tiny = run_cfg(
            &body,
            SimConfig {
                icache_entries: 8,
                ..SimConfig::default()
            },
        );
        assert!(
            tiny.stats.cycles > big.stats.cycles,
            "tiny {} vs big {}",
            tiny.stats.cycles,
            big.stats.cycles
        );
        assert!(tiny.stats.icache_misses > big.stats.icache_misses);
        // Architectural results identical regardless of geometry.
        assert_eq!(
            tiny.machine.mem.read_word(tiny.machine.sp).unwrap(),
            big.machine.mem.read_word(big.machine.sp).unwrap()
        );
    }

    #[test]
    fn wrong_path_halt_does_not_stop_the_machine() {
        // Predicted-taken branch jumps over a halt; prediction is wrong
        // only in that the halt IS the correct path... inverted: the
        // branch is predicted NOT taken so the halt streams in behind
        // it, but the branch is actually taken.
        let r = run("
            cmp.= Accum,$0
            nop
            nop
            nop
            ifjmpy.nt skip   ; actually taken (flag true), predicted not
            halt             ; wrong path: must not commit
        skip:
            mov 0(sp),$9
            halt
        ");
        assert!(r.halted);
        assert_eq!(r.machine.mem.read_word(r.machine.sp).unwrap(), 9);
    }

    #[test]
    fn wrong_path_wild_fetch_is_harmless() {
        // The not-taken path runs into data that does not decode; the
        // branch is predicted not-taken but actually taken. The wild
        // wrong-path fetch must not kill the run.
        let r = run("
            cmp.= Accum,$0
            ifjmpy.nt good
            .word 0x0000B800   ; junk on the wrong path
        good:
            halt
        ");
        assert!(r.halted);
    }

    #[test]
    fn true_path_decode_error_is_reported() {
        let img = assemble_text("jmp bad\nbad: .word 0x0000B800").unwrap();
        let err = CycleSim::new(Machine::load(&img).unwrap(), SimConfig::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Decode { .. }), "{err:?}");
    }

    #[test]
    fn cycle_limit_ends_gracefully() {
        let img = assemble_text("top: jmp top").unwrap();
        let r = CycleSim::new(
            Machine::load(&img).unwrap(),
            SimConfig {
                max_cycles: 500,
                ..SimConfig::default()
            },
        )
        .run()
        .unwrap();
        assert!(!r.halted);
        assert_eq!(r.halt_reason, HaltReason::Watchdog);
        assert!(r.stats.watchdog);
        assert_eq!(r.stats.cycles, 500);
    }

    #[test]
    fn insn_limit_ends_gracefully() {
        let img = assemble_text("top: add 0(sp),$1\n jmp top").unwrap();
        let r = CycleSim::new(
            Machine::load(&img).unwrap(),
            SimConfig {
                max_insns: Some(40),
                ..SimConfig::default()
            },
        )
        .run()
        .unwrap();
        assert!(!r.halted);
        assert_eq!(r.halt_reason, HaltReason::Watchdog);
        assert!(r.stats.watchdog);
        // The limit is checked between cycles, so the run stops at the
        // first boundary at or past 40 retirements.
        assert!(r.stats.program_instrs >= 40);
        assert!(r.stats.program_instrs < 44);
    }

    #[test]
    fn injected_fault_detected_and_recovered_under_parity() {
        use crate::soft_error::{FaultField, FaultPlan, FaultTarget, ParityMode};
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$50
            ifjmpy.t top
            halt
        ";
        let img = assemble_text(src).unwrap();
        let clean = run_cfg(src, SimConfig::default());
        // Strike every slot of a warmed-up loop; under DetectInvalidate
        // every run must still produce the fault-free result.
        let mut detected = 0u64;
        for slot in 0..8u32 {
            let cfg = SimConfig {
                parity: ParityMode::DetectInvalidate,
                fault_plan: Some(FaultPlan {
                    cycle: 60,
                    slot,
                    field: FaultField::NextPc(7),
                    target: FaultTarget::Cache,
                }),
                ..SimConfig::default()
            };
            let r = CycleSim::new(Machine::load(&img).unwrap(), cfg)
                .run()
                .unwrap();
            assert!(r.halted, "slot {slot}");
            assert_eq!(
                r.machine.mem.read_word(r.machine.sp).unwrap(),
                clean.machine.mem.read_word(clean.machine.sp).unwrap(),
                "slot {slot}"
            );
            // A strike is only detected when the corrupted entry is
            // fetched again (one-shot entries linger unread), so the
            // invalidate count is bounded by — not equal to — the
            // injection count.
            assert!(
                r.stats.parity_invalidates <= r.stats.faults_injected,
                "slot {slot}"
            );
            detected += r.stats.parity_invalidates;
        }
        // The loop body is re-fetched every iteration, so at least one
        // of the strikes must have been caught at read time.
        assert!(detected >= 1);
    }

    #[test]
    fn dynamic_predictor_learns_a_loop() {
        use crate::config::HwPredictor;
        // The loop branch: a 2-bit dynamic counter starts weakly
        // not-taken, mispredicts early iterations, then learns. The
        // compare is adjacent (folded), so each early mispredict costs
        // the full 3 cycles — slower than a correct static bit but far
        // better than a wrong one.
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$100
            ifjmpy.nt top      ; static bit says NOT taken (wrong 99x)
            halt
        ";
        let dyn_cfg = SimConfig {
            predictor: HwPredictor::Dynamic {
                bits: 2,
                entries: 256,
            },
            ..SimConfig::default()
        };
        let dynamic = run_cfg(src, dyn_cfg);
        let static_bad = run_cfg(src, SimConfig::default());
        // The dynamic predictor overrides the bad static bit after a
        // couple of iterations.
        assert!(
            dynamic.stats.mispredicts() < 6,
            "dynamic mispredicts = {}",
            dynamic.stats.mispredicts()
        );
        assert!(static_bad.stats.mispredicts() > 90);
        assert!(dynamic.stats.cycles < static_bad.stats.cycles);
        // Architectural results identical.
        assert_eq!(
            dynamic.machine.mem.read_word(dynamic.machine.sp).unwrap(),
            static_bad
                .machine
                .mem
                .read_word(static_bad.machine.sp)
                .unwrap(),
        );
    }

    #[test]
    fn dynamic_predictor_loses_on_alternating_branch() {
        use crate::config::HwPredictor;
        // The paper's alternating case: a 1-bit counter mispredicts
        // every time once warmed, while the optimal static bit gets 50%.
        let src = "
            mov 0(sp),$0
        top:
            and3 0(sp),$1
            cmp.= Accum,$0
            nop
            nop
            nop
            ifjmpy.t skip      ; taken on even i: alternates
            add 4(sp),$1
        skip:
            add 0(sp),$1
            cmp.s< 0(sp),$64
            ifjmpy.t top
            halt
        ";
        let dyn_cfg = SimConfig {
            predictor: HwPredictor::Dynamic {
                bits: 1,
                entries: 256,
            },
            ..SimConfig::default()
        };
        let dynamic = run_cfg(src, dyn_cfg);
        let static_bit = run_cfg(src, SimConfig::default());
        // Both runs compute the same result ...
        assert_eq!(
            dynamic
                .machine
                .mem
                .read_word(dynamic.machine.sp + 4)
                .unwrap(),
            static_bit
                .machine
                .mem
                .read_word(static_bit.machine.sp + 4)
                .unwrap(),
        );
        // ... and the alternating branch is spread (3 instructions), so
        // every wrong guess costs 0 — both predictors tie on cycles.
        // Check the guess quality itself: the 1-bit table must be wrong
        // more often on the alternating branch.
        assert!(
            dynamic.stats.mispredicts_by_stage[0] > static_bit.stats.mispredicts_by_stage[0],
            "dynamic {:?} vs static {:?}",
            dynamic.stats.mispredicts_by_stage,
            static_bit.stats.mispredicts_by_stage
        );
    }

    #[test]
    fn btb_predictor_learns_a_loop_and_charges_cold_misses() {
        use crate::config::HwPredictor;
        // Same loop as the counter test: the static bit is wrong every
        // iteration, a BTB allocates the branch on its first taken
        // retirement and predicts taken from then on. The first wrong
        // guess came from a table miss, so its recovery bubbles land in
        // the btb_miss bucket, not branch_penalty.
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$100
            ifjmpy.nt top      ; static bit says NOT taken (wrong 99x)
            halt
        ";
        let btb_cfg = SimConfig {
            predictor: HwPredictor::Btb {
                entries: 128,
                ways: 4,
            },
            ..SimConfig::default()
        };
        let btb = run_cfg(src, btb_cfg);
        let static_bad = run_cfg(src, SimConfig::default());
        assert!(
            btb.stats.mispredicts() < 6,
            "btb mispredicts = {}",
            btb.stats.mispredicts()
        );
        assert!(btb.stats.cycles < static_bad.stats.cycles);
        assert_eq!(btb.stats.accounts.total(), btb.stats.cycles);
        assert!(
            btb.stats.accounts.btb_miss > 0,
            "cold-miss mispredict must be charged to btb_miss: {:?}",
            btb.stats.accounts
        );
        // The shadow static-bit score is independent of the live
        // predictor: the bad bit misses ~99 times either way.
        assert_eq!(
            btb.stats.static_bit_mispredicts,
            static_bad.stats.static_bit_mispredicts
        );
        assert!(btb.stats.static_bit_mispredicts > 90);
        assert_eq!(btb.stats.predicted_by, "btb128x4");
        assert_eq!(static_bad.stats.predicted_by, "static");
        // Under the static bit the shadow score IS the live score.
        assert_eq!(
            static_bad.stats.static_bit_mispredicts,
            static_bad.stats.mispredicts()
        );
        // Architectural results identical.
        assert_eq!(
            btb.machine.mem.read_word(btb.machine.sp).unwrap(),
            static_bad
                .machine
                .mem
                .read_word(static_bad.machine.sp)
                .unwrap(),
        );
    }

    #[test]
    fn jump_trace_predictor_learns_a_loop() {
        use crate::config::HwPredictor;
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$100
            ifjmpy.nt top      ; static bit says NOT taken (wrong 99x)
            halt
        ";
        let jt_cfg = SimConfig {
            predictor: HwPredictor::JumpTrace { entries: 8 },
            ..SimConfig::default()
        };
        let jt = run_cfg(src, jt_cfg);
        let static_bad = run_cfg(src, SimConfig::default());
        // A hit predicts taken, so after the first taken retirement the
        // loop branch is always right; only the cold miss costs.
        assert!(
            jt.stats.mispredicts() < 3,
            "jump-trace mispredicts = {}",
            jt.stats.mispredicts()
        );
        assert!(jt.stats.cycles < static_bad.stats.cycles);
        assert_eq!(jt.stats.accounts.total(), jt.stats.cycles);
        assert!(jt.stats.accounts.btb_miss > 0, "{:?}", jt.stats.accounts);
        assert_eq!(jt.stats.predicted_by, "jumptrace8");
        assert_eq!(
            jt.machine.mem.read_word(jt.machine.sp).unwrap(),
            static_bad
                .machine
                .mem
                .read_word(static_bad.machine.sp)
                .unwrap(),
        );
    }

    #[test]
    fn predict_events_mark_table_misses() {
        use crate::config::HwPredictor;
        use crate::EventRing;
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$16
            ifjmpy.nt top
            halt
        ";
        let image = assemble_text(src).unwrap();
        let cfg = SimConfig {
            predictor: HwPredictor::Btb {
                entries: 8,
                ways: 2,
            },
            ..SimConfig::default()
        };
        let sim =
            CycleSim::with_observer(Machine::load(&image).unwrap(), cfg, EventRing::new(1 << 16));
        let (run, ring) = sim.run_observed().unwrap();
        assert!(run.halted);
        let predicts: Vec<_> = ring
            .events()
            .filter_map(|e| match *e {
                PipeEvent::Predict { guess, miss, .. } => Some((guess, miss)),
                _ => None,
            })
            .collect();
        assert!(!predicts.is_empty(), "dynamic runs must emit Predict");
        // First consult of the loop branch misses (predicting
        // not-taken); once allocated, hits predict taken.
        assert_eq!(predicts[0], (false, true));
        assert!(predicts.iter().any(|&(g, m)| g && !m));
        // The static-bit machine consults no table: no Predict events.
        let sim = CycleSim::with_observer(
            Machine::load(&image).unwrap(),
            SimConfig::default(),
            EventRing::new(1 << 16),
        );
        let (_, ring) = sim.run_observed().unwrap();
        assert!(!ring
            .events()
            .any(|e| matches!(e, PipeEvent::Predict { .. })));
    }

    #[test]
    fn slow_memory_hurts_cold_start_only() {
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$100
            ifjmpy.t top
            halt
        ";
        let fast = run_cfg(src, SimConfig::default());
        let slow = run_cfg(
            src,
            SimConfig {
                mem_latency: 10,
                ..SimConfig::default()
            },
        );
        assert!(slow.stats.cycles > fast.stats.cycles);
        // The loop runs from the decoded cache, so the gap is bounded by
        // the (small) number of misses, not proportional to iterations.
        assert!(slow.stats.cycles < fast.stats.cycles + 400);
    }

    // ---- Top-down cycle accounting ----

    fn assert_conserved(r: &CycleRun) {
        assert_eq!(
            r.stats.accounts.total(),
            r.stats.cycles,
            "buckets must sum to cycles: {:?}",
            r.stats.accounts
        );
        assert_eq!(
            r.stats.accounts.useful, r.stats.issued,
            "useful cycles are exactly the retirements"
        );
        assert!(
            r.stats.accounts.branch_penalty.total()
                <= r.stats.mispredicts_by_stage.penalty_cycles(),
            "branch bubbles cannot exceed the scheduled penalty: {} > {}",
            r.stats.accounts.branch_penalty.total(),
            r.stats.mispredicts_by_stage.penalty_cycles()
        );
    }

    #[test]
    fn accounting_attributes_startup_and_refills() {
        let r = run("
            mov 0(sp),$1
            add 0(sp),$2
            add 0(sp),$3
            halt
        ");
        assert_conserved(&r);
        // Pipeline fill: exactly `depth` cycles pass before the first
        // entry can reach retire.
        assert_eq!(r.stats.accounts.startup, 3);
        // A cold straight line has no branches — every other bubble is
        // a decode refill.
        assert_eq!(r.stats.accounts.branch_penalty.total(), 0);
        assert_eq!(r.stats.accounts.indirect_stall, 0);
        assert!(r.stats.accounts.miss_refill > 0);
    }

    #[test]
    fn accounting_startup_equals_depth_at_every_geometry() {
        for depth in MIN_DEPTH..=6 {
            let r = run_cfg(
                "
                mov 0(sp),$0
            top:
                add 0(sp),$1
                cmp.s< 0(sp),$8
                ifjmpy.t top
                halt
            ",
                SimConfig {
                    geometry: PipelineGeometry::new(depth),
                    ..SimConfig::default()
                },
            );
            assert_conserved(&r);
            assert_eq!(r.stats.accounts.startup, depth as u64, "depth {depth}");
        }
    }

    #[test]
    fn folded_mispredict_bubbles_land_in_the_retire_bucket() {
        // The folded-compare mispredict resolves at RR; its recovery
        // bubbles are charged to the retire-stage bucket and to no
        // other branch bucket.
        let r = run("
            nop
            cmp.= Accum,$0
            ifjmpn.t skip
            nop
        skip:
            halt
        ");
        assert_conserved(&r);
        let penalty = &r.stats.accounts.branch_penalty;
        assert!(penalty.get(3) > 0, "{penalty}");
        assert_eq!(penalty.total(), penalty.get(3), "{penalty}");
    }

    #[test]
    fn spread_compare_leaves_branch_buckets_empty() {
        // Fully spread: the wrong prediction bit is corrected for free
        // at cache-read time — the paper's zero-delay case, visible in
        // the accounting as an empty branch-penalty column.
        let r = run_cfg(
            "
            nop
            cmp.= Accum,$0
            add 0(sp),$1
            add 4(sp),$1
            ifjmpn.t skip
            nop
        skip:
            halt
        ",
            SimConfig::without_folding(),
        );
        assert_conserved(&r);
        assert_eq!(r.stats.mispredicts_by_stage, [1, 0, 0, 0]);
        assert_eq!(r.stats.accounts.branch_penalty.total(), 0);
    }

    #[test]
    fn parity_invalidate_refills_accounted_separately() {
        use crate::soft_error::{FaultField, FaultPlan, FaultTarget, ParityMode};
        let src = "
            mov 0(sp),$0
        top:
            add 0(sp),$1
            cmp.s< 0(sp),$50
            ifjmpy.t top
            halt
        ";
        let img = assemble_text(src).unwrap();
        let mut recovered = 0u64;
        for slot in 0..8u32 {
            let cfg = SimConfig {
                parity: ParityMode::DetectInvalidate,
                fault_plan: Some(FaultPlan {
                    cycle: 60,
                    slot,
                    field: FaultField::NextPc(7),
                    target: FaultTarget::Cache,
                }),
                ..SimConfig::default()
            };
            let r = CycleSim::new(Machine::load(&img).unwrap(), cfg)
                .run()
                .unwrap();
            assert_conserved(&r);
            if r.stats.parity_invalidates > 0 {
                recovered += r.stats.accounts.parity_recovery;
            } else {
                assert_eq!(r.stats.accounts.parity_recovery, 0, "slot {slot}");
            }
        }
        // At least one strike hit the warm loop body, and its redecode
        // stall landed in the parity bucket, not the ordinary-miss one.
        assert!(recovered >= 1);
    }

    #[test]
    fn watchdog_truncation_still_conserves() {
        let img = assemble_text("top: jmp top").unwrap();
        let r = CycleSim::new(
            Machine::load(&img).unwrap(),
            SimConfig {
                max_cycles: 500,
                ..SimConfig::default()
            },
        )
        .run()
        .unwrap();
        assert!(r.stats.watchdog);
        assert_conserved(&r);
    }
}

use std::collections::BTreeMap;
use std::fmt;

use crisp_isa::{BinOp, Decoded, ExecOp, FoldClass};

use crate::accounting::CycleAccounts;
use crate::geometry::StageHistogram;

/// The fixed mnemonic categories, in the index order used by the
/// histogram array (binary operations first, mirroring `BinOp`).
const CATEGORY_NAMES: [&str; NUM_CATEGORIES] = [
    "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "sar", "move", "cmp",
    "enter", "leave", "call", "return", "nop", "halt", "jump", "if-jump",
];
const NUM_CATEGORIES: usize = 21;
const IDX_CMP: usize = 12;
const IDX_ENTER: usize = 13;
const IDX_LEAVE: usize = 14;
const IDX_CALL: usize = 15;
const IDX_RETURN: usize = 16;
const IDX_NOP: usize = 17;
const IDX_HALT: usize = 18;
const IDX_JUMP: usize = 19;
const IDX_IF_JUMP: usize = 20;

/// Dynamic opcode histogram, keyed by mnemonic category.
///
/// The categories mirror the paper's Table 2 ("add", "if-jump", "cmp",
/// "move", "and", "jump", "enter", "return"): a folded entry contributes
/// its host mnemonic *and* its branch mnemonic, because Table 2 counts
/// program instructions, not pipeline slots.
///
/// The category set is closed (every `ExecOp` maps to one of
/// [`CATEGORY_NAMES`]), so the histogram is a fixed array and the
/// per-retired-instruction [`OpcodeCounts::record`] is two indexed
/// increments — no tree walk on the hot path. Ad-hoc names passed to
/// [`OpcodeCounts::bump`] that fall outside the set land in a cold
/// overflow map, preserving the old accept-anything behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpcodeCounts {
    counts: [u64; NUM_CATEGORIES],
    other: BTreeMap<&'static str, u64>,
}

/// Index of a category name in the fixed set, if it belongs to it.
fn category_index(name: &str) -> Option<usize> {
    CATEGORY_NAMES.iter().position(|&n| n == name)
}

impl OpcodeCounts {
    /// An empty histogram.
    pub fn new() -> OpcodeCounts {
        OpcodeCounts::default()
    }

    /// Record one executed program instruction by category name.
    pub fn bump(&mut self, name: &'static str) {
        match category_index(name) {
            Some(i) => self.counts[i] += 1,
            None => *self.other.entry(name).or_insert(0) += 1,
        }
    }

    /// Record the program instruction(s) represented by one decoded
    /// entry: the host operation plus, when folded, the branch.
    #[inline]
    pub fn record(&mut self, d: &Decoded) {
        self.counts[host_index(d)] += 1;
        if d.folded {
            self.counts[match d.fold {
                FoldClass::Cond { .. } => IDX_IF_JUMP,
                _ => IDX_JUMP,
            }] += 1;
        }
    }

    /// Count for one category.
    pub fn get(&self, name: &str) -> u64 {
        match category_index(name) {
            Some(i) => self.counts[i],
            None => self.other.get(name).copied().unwrap_or(0),
        }
    }

    /// Total across categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.other.values().sum::<u64>()
    }

    /// Record `n` occurrences of the fixed category at `idx` — the
    /// replay port for the threaded tier's precomputed per-block
    /// histogram deltas (see [`crate::TranslatedImage`]), which turn
    /// the per-entry [`OpcodeCounts::record`] into a handful of adds
    /// per block.
    #[inline]
    pub(crate) fn bump_index(&mut self, idx: usize, n: u64) {
        self.counts[idx] += n;
    }

    /// The nonzero fixed-category slots as `(index, count)` pairs —
    /// the translation-time inverse of [`OpcodeCounts::bump_index`].
    pub(crate) fn sparse(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Iterate `(name, count)` sorted by descending count (stable by
    /// name for ties) — the paper's table ordering. Categories that
    /// never occurred are omitted.
    pub fn sorted_desc(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = CATEGORY_NAMES
            .iter()
            .zip(self.counts.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&k, &c)| (k, c))
            .chain(self.other.iter().map(|(&k, &c)| (k, c)))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

impl fmt::Display for OpcodeCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().max(1);
        for (name, count) in self.sorted_desc() {
            writeln!(
                f,
                "{name:<10} {count:>10}  {:>6.2}%",
                count as f64 * 100.0 / total as f64
            )?;
        }
        Ok(())
    }
}

/// Histogram index of the host operation of a decoded entry.
fn host_index(d: &Decoded) -> usize {
    match d.exec {
        ExecOp::Nop => match d.fold {
            // An unfolded branch decodes to an entry whose ExecOp is Nop;
            // classify it by its control class.
            FoldClass::Uncond if !d.folded => IDX_JUMP,
            FoldClass::Cond { .. } if !d.folded => IDX_IF_JUMP,
            _ => IDX_NOP,
        },
        ExecOp::Halt => IDX_HALT,
        ExecOp::Op2 { op, .. } => binop_index(op),
        ExecOp::Op3 { op, .. } => binop_index(op),
        ExecOp::Cmp { .. } => IDX_CMP,
        ExecOp::Enter { .. } => IDX_ENTER,
        ExecOp::Leave { .. } => IDX_LEAVE,
        ExecOp::CallPush { .. } => IDX_CALL,
        ExecOp::RetPop => IDX_RETURN,
    }
}

/// Binary operations occupy the first twelve histogram slots in
/// declaration order (`BinOp::Mov` is "move").
fn binop_index(op: BinOp) -> usize {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Sar => 10,
        BinOp::Mov => 11,
    }
}

/// Counters produced by the functional engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Program instructions executed (a folded entry counts as two).
    pub program_instrs: u64,
    /// Decoded entries executed (what the EU pipeline would issue).
    pub entries: u64,
    /// Entries that carried a folded branch.
    pub folded: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Conditional branches whose static prediction bit was wrong.
    pub static_mispredicts: u64,
    /// All control transfers (conditional, unconditional, calls, returns).
    pub transfers: u64,
    /// Whether the run ended on the watchdog step limit rather than
    /// `halt` (see [`crate::HaltReason`]).
    pub watchdog: bool,
    /// Basic blocks in the threaded-code translation table the run
    /// executed under (0 on the one-entry interpreter — see
    /// [`crate::ThreadedSim`]).
    pub blocks_translated: u64,
    /// Translated superinstruction blocks dispatched by the threaded
    /// tier (each one retires a whole block with no per-entry decode
    /// or dispatch).
    pub superinstr_dispatches: u64,
    /// Times the threaded tier fell back to the one-entry interpreter:
    /// untranslated/indirect targets, watchdog-budget tails, or blocks
    /// invalidated by stores into text.
    pub deopt_falls: u64,
    /// Per-mnemonic dynamic histogram.
    pub opcodes: OpcodeCounts,
}

/// The one named mapping from a branch's resolving stage to its index
/// in [`CycleStats::mispredicts_by_stage`] and in
/// [`crate::PipeEvent::BranchResolve`]/[`crate::PipeEvent::Squash`].
///
/// The index *is* the mispredict penalty in cycles (the paper's
/// schedule): a branch resolved at cache-read time costs 0, at IR 1,
/// at OR 2, and at RR (the folded-compare case) 3. Every bookkeeping
/// site in the pipeline goes through these constants so a mis-indexed
/// stage cannot silently corrupt the Table 3 reproduction.
///
/// These names describe the default [`crate::PipelineGeometry`] (EU
/// depth 3). At depth `D` the schedule generalizes: index 0 is still
/// fetch-time, indices `1..D` are the early-resolve stages, and the
/// retire index — the folded-compare penalty — is `D` (see
/// [`crate::PipelineGeometry::retire_stage`]).
pub mod resolve_stage {
    /// Resolved at cache-read (fetch) time — 0-cycle penalty.
    pub const FETCH: usize = 0;
    /// Resolved from the Instruction Register stage — 1 cycle.
    pub const IR: usize = 1;
    /// Resolved from the Operand Register stage — 2 cycles.
    pub const OR: usize = 2;
    /// Resolved at Result Register retire (folded compare) — 3 cycles
    /// at the default depth-3 geometry.
    pub const RR: usize = 3;
}

/// Version of the flat-JSON schema emitted by [`CycleStats::to_json`]
/// (and `crisp-run --stats-json`). Version 1 (implicit — no
/// `schema_version` field) emitted `mispredicts_by_stage` as a fixed
/// 4-tuple; version 2 emits it at the live pipeline depth (`D + 1`
/// entries) and records this field so consumers can detect the shape;
/// version 3 adds the nested `accounts` object (top-down cycle
/// accounting, see [`crate::CycleAccounts`]) and the `dropped_events`
/// count (event-ring overflow during an observed run); version 4 adds
/// `predicted_by` (the live [`crate::HwPredictor`] label),
/// `static_bit_mispredicts` (the compiler's static bit scored in
/// shadow over the same retired branch stream, giving the
/// per-predictor mispredict split), and the `btb_miss` bucket inside
/// `accounts`; version 5 adds `parity_scrubs` (corrupted BTB entries
/// dropped at the train port) and `degraded_ways` (cache slots / BTB
/// ways taken out of service by [`crate::DegradePolicy`]); version 6
/// extends the functional-run object ([`RunStats::to_json`], which now
/// also announces the version) with the threaded-tier counters
/// `blocks_translated`, `superinstr_dispatches` and `deopt_falls` (see
/// [`crate::ThreadedSim`]).
pub const STATS_SCHEMA_VERSION: u32 = 6;

/// Counters produced by the cycle engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Total clock cycles.
    pub cycles: u64,
    /// Valid entries retired by the EU (pipeline issues).
    pub issued: u64,
    /// Program instructions retired (issued + folded branches).
    pub program_instrs: u64,
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Mispredicted conditional branches, by the stage distance at which
    /// they resolved — at the default geometry `[at fetch (0 lost),
    /// at IR (1), at OR (2), at RR (3)]`; sized to the configured
    /// pipeline depth in general (one bucket per resolve point).
    pub mispredicts_by_stage: StageHistogram,
    /// Pipeline slots killed by mispredict recovery.
    pub flushed_slots: u64,
    /// Conditional branches resolved with certainty at cache-read time
    /// (the Branch Spreading payoff: no compare in the pipeline).
    pub resolved_at_fetch: u64,
    /// Decoded-cache hits (EU side).
    pub icache_hits: u64,
    /// Decoded-cache misses (EU side).
    pub icache_misses: u64,
    /// Cycles the EU spent stalled waiting for the PDU.
    pub miss_stall_cycles: u64,
    /// Cycles stalled waiting for an indirect target to resolve.
    pub indirect_stall_cycles: u64,
    /// Instructions decoded by the PDU (including wrong-path decodes).
    pub pdu_decodes: u64,
    /// Decoded-cache fills that made a new PC resident (distinct from
    /// same-PC refills — see [`crate::DecodedCache::inserts`]).
    pub cache_inserts: u64,
    /// Decoded-cache fills that re-wrote an already-resident PC.
    pub cache_refills: u64,
    /// Decoded-cache fills that displaced a different PC.
    pub cache_evictions: u64,
    /// Decoded-cache entries invalidated by a parity mismatch at read
    /// time (see [`crate::soft_error`]).
    pub parity_invalidates: u64,
    /// Transient faults actually injected into live front-end state
    /// (cache entries, predictor tables, or PDU fold slots).
    pub faults_injected: u64,
    /// Corrupted BTB entries dropped by the train-port parity scrub
    /// (see [`crate::BtbTable::parity_scrubs`]). Separate from
    /// `parity_invalidates`: a scrub drops hint state without a refill.
    pub parity_scrubs: u64,
    /// Cache slots and BTB ways taken out of service by the degrade
    /// policy ([`crate::DegradePolicy`]); each one also produced a
    /// [`crate::PipeEvent::Degrade`] event.
    pub degraded_ways: u64,
    /// Whether the run ended on a watchdog limit rather than `halt`
    /// (see [`crate::HaltReason`]).
    pub watchdog: bool,
    /// Label of the hardware predictor that drove the fetch guesses
    /// ([`crate::HwPredictor::label`]); empty on a default-constructed
    /// stats block that never ran.
    pub predicted_by: String,
    /// Retired conditional branches the compiler's *static bit* would
    /// have mispredicted, scored in shadow regardless of which
    /// predictor is live. Against `mispredicts` (the live predictor's
    /// score over the same stream) this gives the paper's
    /// static-vs-dynamic comparison from a single run.
    pub static_bit_mispredicts: u64,
    /// Top-down cycle accounting: every cycle attributed to exactly one
    /// cause, with `accounts.total() == cycles` (see
    /// [`crate::accounting`]).
    pub accounts: CycleAccounts,
    /// Pipeline events dropped by a saturated [`crate::EventRing`]
    /// during an observed run. The engine itself never drops events —
    /// drivers copy the ring's overflow count here before exporting, so
    /// event-derived attribution is trusted (0) or flagged (> 0).
    pub dropped_events: u64,
}

impl CycleStats {
    /// Total mispredicted conditional branches.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts_by_stage.total()
    }

    /// Cycles per issued instruction.
    pub fn cycles_per_issued(&self) -> f64 {
        self.cycles as f64 / self.issued.max(1) as f64
    }

    /// Apparent cycles per program instruction — the paper's black-box
    /// metric that drops below 1.0 when folding works.
    pub fn apparent_cpi(&self) -> f64 {
        self.cycles as f64 / self.program_instrs.max(1) as f64
    }

    /// One flat JSON object with every counter and derived ratio —
    /// the machine-readable form behind `crisp-run --stats-json`.
    ///
    /// `mispredicts_by_stage` has one entry per resolve point of the
    /// configured geometry (`D + 1` entries at EU depth `D`), the
    /// nested `accounts` object carries the top-down cycle buckets, and
    /// `schema_version` ([`STATS_SCHEMA_VERSION`]) announces the shape.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                r#"{{"schema_version":{},"#,
                r#""cycles":{},"issued":{},"program_instrs":{},"cond_branches":{},"#,
                r#""mispredicts":{},"mispredicts_by_stage":{},"flushed_slots":{},"#,
                r#""resolved_at_fetch":{},"icache_hits":{},"icache_misses":{},"#,
                r#""miss_stall_cycles":{},"indirect_stall_cycles":{},"pdu_decodes":{},"#,
                r#""cache_inserts":{},"cache_refills":{},"cache_evictions":{},"#,
                r#""parity_invalidates":{},"faults_injected":{},"#,
                r#""parity_scrubs":{},"degraded_ways":{},"watchdog":{},"#,
                r#""predicted_by":"{}","static_bit_mispredicts":{},"#,
                r#""accounts":{},"dropped_events":{},"#,
                r#""cycles_per_issued":{:.6},"apparent_cpi":{:.6}}}"#
            ),
            STATS_SCHEMA_VERSION,
            self.cycles,
            self.issued,
            self.program_instrs,
            self.cond_branches,
            self.mispredicts(),
            self.mispredicts_by_stage.json(),
            self.flushed_slots,
            self.resolved_at_fetch,
            self.icache_hits,
            self.icache_misses,
            self.miss_stall_cycles,
            self.indirect_stall_cycles,
            self.pdu_decodes,
            self.cache_inserts,
            self.cache_refills,
            self.cache_evictions,
            self.parity_invalidates,
            self.faults_injected,
            self.parity_scrubs,
            self.degraded_ways,
            self.watchdog,
            self.predicted_by,
            self.static_bit_mispredicts,
            self.accounts.json(),
            self.dropped_events,
            self.cycles_per_issued(),
            self.apparent_cpi(),
        )
    }

    /// The top-down CPI attribution table behind
    /// `crisp-run --cpi-breakdown`: each accounting bucket with its
    /// cycle count, share of total cycles, and contribution to the
    /// apparent CPI (cycles per program instruction), so the paper's
    /// static-vs-folding comparison reads off as "where did the branch
    /// delay go".
    pub fn cpi_breakdown(&self) -> String {
        use fmt::Write as _;
        let total = self.accounts.total();
        let share_denom = total.max(1) as f64;
        let instrs = self.program_instrs.max(1) as f64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle accounting ({} cycles over {} program instructions):",
            self.cycles, self.program_instrs
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>12} {:>8} {:>8}",
            "bucket", "cycles", "share", "CPI"
        );
        for (label, cycles) in self.accounts.rows() {
            let _ = writeln!(
                out,
                "  {label:<24} {cycles:>12} {:>7.2}% {:>8.3}",
                cycles as f64 * 100.0 / share_denom,
                cycles as f64 / instrs,
            );
        }
        let _ = writeln!(
            out,
            "  {:<24} {total:>12} {:>7.2}% {:>8.3}",
            "total",
            100.0,
            total as f64 / instrs,
        );
        if self.watchdog {
            let _ = writeln!(
                out,
                "  (run truncated by watchdog — buckets cover the cycles simulated)"
            );
        }
        out
    }
}

/// The human-readable report `crisp-run --cycles` prints.
impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles               : {}", self.cycles)?;
        writeln!(f, "instructions issued  : {}", self.issued)?;
        writeln!(f, "program instructions : {}", self.program_instrs)?;
        writeln!(f, "issued CPI           : {:.3}", self.cycles_per_issued())?;
        writeln!(f, "apparent CPI         : {:.3}", self.apparent_cpi())?;
        writeln!(f, "conditional branches : {}", self.cond_branches)?;
        writeln!(
            f,
            "mispredicts          : {} (by resolve stage {})",
            self.mispredicts(),
            self.mispredicts_by_stage
        )?;
        if !self.predicted_by.is_empty() && self.predicted_by != "static" {
            writeln!(
                f,
                "predictor            : {} (static bit would miss {})",
                self.predicted_by, self.static_bit_mispredicts
            )?;
        }
        writeln!(f, "resolved at fetch    : {}", self.resolved_at_fetch)?;
        writeln!(
            f,
            "decoded cache        : {} hits / {} misses",
            self.icache_hits, self.icache_misses
        )?;
        writeln!(
            f,
            "stall cycles         : {} miss / {} indirect",
            self.miss_stall_cycles, self.indirect_stall_cycles
        )?;
        writeln!(f, "pdu decodes          : {}", self.pdu_decodes)?;
        writeln!(
            f,
            "cache fills          : {} inserts / {} refills / {} evictions",
            self.cache_inserts, self.cache_refills, self.cache_evictions
        )?;
        writeln!(
            f,
            "soft errors          : {} injected / {} parity invalidates",
            self.faults_injected, self.parity_invalidates
        )?;
        if self.parity_scrubs > 0 || self.degraded_ways > 0 {
            writeln!(
                f,
                "degradation          : {} BTB scrubs / {} ways disabled",
                self.parity_scrubs, self.degraded_ways
            )?;
        }
        if self.watchdog {
            writeln!(f, "watchdog             : expired before halt")?;
        }
        Ok(())
    }
}

impl RunStats {
    /// One flat JSON object with every counter, including the opcode
    /// histogram as a nested object. `schema_version`
    /// ([`STATS_SCHEMA_VERSION`]) announces the shape; the threaded
    /// counters are zero on interpreter runs.
    pub fn to_json(&self) -> String {
        let opcodes = self
            .opcodes
            .sorted_desc()
            .into_iter()
            .map(|(name, count)| format!(r#""{name}":{count}"#))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                r#"{{"schema_version":{},"#,
                r#""program_instrs":{},"entries":{},"folded":{},"cond_branches":{},"#,
                r#""static_mispredicts":{},"transfers":{},"watchdog":{},"#,
                r#""blocks_translated":{},"superinstr_dispatches":{},"deopt_falls":{},"#,
                r#""opcodes":{{{}}}}}"#
            ),
            STATS_SCHEMA_VERSION,
            self.program_instrs,
            self.entries,
            self.folded,
            self.cond_branches,
            self.static_mispredicts,
            self.transfers,
            self.watchdog,
            self.blocks_translated,
            self.superinstr_dispatches,
            self.deopt_falls,
            opcodes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_isa::{decode_and_fold, encoding, BranchTarget, FoldPolicy, Instr, Operand};

    fn folded_add_jmp() -> Decoded {
        let mut p = encoding::encode(&Instr::Op2 {
            op: BinOp::Add,
            dst: Operand::SpOff(0),
            src: Operand::Imm(1),
        })
        .unwrap();
        p.extend(
            encoding::encode(&Instr::Jmp {
                target: BranchTarget::PcRel(-2),
            })
            .unwrap(),
        );
        decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap()
    }

    #[test]
    fn folded_entry_counts_two_program_instrs() {
        let mut c = OpcodeCounts::new();
        c.record(&folded_add_jmp());
        assert_eq!(c.get("add"), 1);
        assert_eq!(c.get("jump"), 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn unfolded_branch_classified() {
        let p = encoding::encode(&Instr::Jmp {
            target: BranchTarget::PcRel(-2),
        })
        .unwrap();
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        let mut c = OpcodeCounts::new();
        c.record(&d);
        assert_eq!(c.get("jump"), 1);
        assert_eq!(c.total(), 1);

        let p = encoding::encode(&Instr::IfJmp {
            on_true: true,
            predict_taken: true,
            target: BranchTarget::PcRel(-2),
        })
        .unwrap();
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        c.record(&d);
        assert_eq!(c.get("if-jump"), 1);
    }

    #[test]
    fn mov_counted_as_move() {
        let p = encoding::encode(&Instr::Op2 {
            op: BinOp::Mov,
            dst: Operand::SpOff(0),
            src: Operand::Imm(1),
        })
        .unwrap();
        let d = decode_and_fold(&p, 0, 0, FoldPolicy::Host13).unwrap();
        let mut c = OpcodeCounts::new();
        c.record(&d);
        assert_eq!(c.get("move"), 1);
    }

    #[test]
    fn sorted_desc_orders_by_count() {
        let mut c = OpcodeCounts::new();
        for _ in 0..3 {
            c.bump("add");
        }
        c.bump("cmp");
        c.bump("cmp");
        c.bump("jump");
        let v = c.sorted_desc();
        assert_eq!(v[0], ("add", 3));
        assert_eq!(v[1], ("cmp", 2));
        assert_eq!(v[2], ("jump", 1));
    }

    #[test]
    fn cycle_stat_ratios() {
        let s = CycleStats {
            cycles: 100,
            issued: 80,
            program_instrs: 120,
            ..CycleStats::default()
        };
        assert!((s.cycles_per_issued() - 1.25).abs() < 1e-9);
        assert!((s.apparent_cpi() - 100.0 / 120.0).abs() < 1e-9);
        assert_eq!(CycleStats::default().cycles_per_issued(), 0.0);
    }

    #[test]
    fn cycle_stats_display_and_json() {
        let s = CycleStats {
            cycles: 100,
            issued: 80,
            program_instrs: 120,
            cond_branches: 10,
            mispredicts_by_stage: [1, 0, 2, 3].into(),
            icache_hits: 90,
            icache_misses: 5,
            miss_stall_cycles: 7,
            indirect_stall_cycles: 2,
            cache_inserts: 5,
            cache_refills: 2,
            cache_evictions: 1,
            ..CycleStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("cycles               : 100"), "{text}");
        assert!(text.contains("mispredicts          : 6"), "{text}");
        assert!(text.contains("90 hits / 5 misses"), "{text}");
        assert!(text.contains("7 miss / 2 indirect"), "{text}");
        assert!(
            text.contains("5 inserts / 2 refills / 1 evictions"),
            "{text}"
        );
        let json = s.to_json();
        assert!(json.contains(r#""cycles":100"#), "{json}");
        assert!(
            json.starts_with(&format!(r#"{{"schema_version":{STATS_SCHEMA_VERSION},"#)),
            "{json}"
        );
        assert!(
            json.contains(r#""mispredicts_by_stage":[1,0,2,3]"#),
            "{json}"
        );
        assert!(
            json.contains(r#""cache_inserts":5,"cache_refills":2,"cache_evictions":1"#),
            "{json}"
        );
        assert!(json.contains(r#""apparent_cpi":0.833333"#), "{json}");
        assert!(
            json.contains(r#""parity_scrubs":0,"degraded_ways":0"#),
            "{json}"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Degradation counters appear in the report only when nonzero.
        assert!(!text.contains("degradation"), "{text}");
        let degraded = CycleStats {
            parity_scrubs: 4,
            degraded_ways: 2,
            ..CycleStats::default()
        };
        let dtext = degraded.to_string();
        assert!(
            dtext.contains("degradation          : 4 BTB scrubs / 2 ways disabled"),
            "{dtext}"
        );
        let djson = degraded.to_json();
        assert!(
            djson.contains(r#""parity_scrubs":4,"degraded_ways":2"#),
            "{djson}"
        );
    }

    #[test]
    fn stats_json_carries_predictor_split() {
        let s = CycleStats {
            cycles: 10,
            predicted_by: "btb128x4".to_string(),
            static_bit_mispredicts: 7,
            ..CycleStats::default()
        };
        let json = s.to_json();
        assert!(json.contains(r#""predicted_by":"btb128x4""#), "{json}");
        assert!(json.contains(r#""static_bit_mispredicts":7"#), "{json}");
        let text = s.to_string();
        assert!(
            text.contains("predictor            : btb128x4 (static bit would miss 7)"),
            "{text}"
        );
        // The static-bit machine keeps its historical report shape.
        let plain = CycleStats {
            predicted_by: "static".to_string(),
            ..CycleStats::default()
        };
        assert!(!plain.to_string().contains("predictor            :"));
    }

    #[test]
    fn stats_json_carries_accounts_and_dropped_events() {
        use crate::accounting::BubbleCause;

        let mut s = CycleStats {
            cycles: 12,
            issued: 6,
            program_instrs: 8,
            dropped_events: 3,
            ..CycleStats::default()
        };
        s.accounts.useful = 6;
        for _ in 0..3 {
            s.accounts.bubble(BubbleCause::Startup);
        }
        s.accounts.bubble(BubbleCause::Branch(3));
        s.accounts.bubble(BubbleCause::Branch(3));
        s.accounts.bubble(BubbleCause::MissRefill);
        assert_eq!(s.accounts.total(), s.cycles);

        let json = s.to_json();
        assert!(
            json.contains(
                r#""accounts":{"useful":6,"branch_penalty":[0,0,0,2],"miss_refill":1,"parity_recovery":0,"indirect_stall":0,"btb_miss":0,"startup":3}"#
            ),
            "{json}"
        );
        assert!(json.contains(r#""dropped_events":3"#), "{json}");

        let table = s.cpi_breakdown();
        assert!(table.contains("useful issue"), "{table}");
        assert!(table.contains("resolved at RR"), "{table}");
        assert!(table.contains("pipeline startup"), "{table}");
        assert!(table.lines().last().unwrap().contains("total"), "{table}");
        assert!(!table.contains("watchdog"), "{table}");

        s.watchdog = true;
        assert!(s.cpi_breakdown().contains("truncated by watchdog"));
    }

    #[test]
    fn stats_json_emits_live_depth_histogram() {
        // A depth-5 geometry has six resolve points; the export must
        // follow the live depth, not the paper's fixed 4-tuple.
        let s = CycleStats {
            mispredicts_by_stage: [0, 1, 0, 0, 2, 7].into(),
            ..CycleStats::default()
        };
        let json = s.to_json();
        assert!(
            json.contains(r#""mispredicts_by_stage":[0,1,0,0,2,7]"#),
            "{json}"
        );
        assert!(json.contains(r#""mispredicts":10"#), "{json}");
    }

    #[test]
    fn run_stats_json_includes_opcodes() {
        let mut s = RunStats {
            program_instrs: 3,
            entries: 2,
            blocks_translated: 4,
            superinstr_dispatches: 9,
            deopt_falls: 1,
            ..RunStats::default()
        };
        s.opcodes.bump("add");
        s.opcodes.bump("add");
        s.opcodes.bump("cmp");
        let json = s.to_json();
        assert!(
            json.starts_with(&format!(r#"{{"schema_version":{STATS_SCHEMA_VERSION},"#)),
            "{json}"
        );
        assert!(json.contains(r#""program_instrs":3"#), "{json}");
        assert!(
            json.contains(r#""blocks_translated":4,"superinstr_dispatches":9,"deopt_falls":1"#),
            "{json}"
        );
        assert!(json.contains(r#""opcodes":{"add":2,"cmp":1}"#), "{json}");
    }

    #[test]
    fn opcode_sparse_round_trips_through_bump_index() {
        let mut c = OpcodeCounts::new();
        c.record(&folded_add_jmp());
        c.bump("cmp");
        let mut replay = OpcodeCounts::new();
        for (idx, n) in c.sparse() {
            replay.bump_index(idx, n);
        }
        assert_eq!(replay, c);
    }

    #[test]
    fn display_shows_percentages() {
        let mut c = OpcodeCounts::new();
        c.bump("add");
        c.bump("add");
        c.bump("cmp");
        c.bump("cmp");
        let text = c.to_string();
        assert!(text.contains("add"));
        assert!(text.contains("50.00%"), "{text}");
    }
}

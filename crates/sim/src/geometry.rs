//! Parameterized execution-pipeline geometry.
//!
//! The paper's machine has a 3-stage execution unit — IR (instruction
//! register), OR (operand register), RR (result register) — and its
//! central quantity, cycles lost per branch as a function of the
//! compare→branch distance, is an artifact of that specific depth:
//! a branch that resolves `k` stages before retire costs `k` fewer
//! cycles when mispredicted. Ditzel & McLellan note the schedule
//! scales with pipe depth, which is exactly why folding and spreading
//! matter *more* on deeper machines. [`PipelineGeometry`] lifts the
//! depth into a value so the same engine can sweep it.
//!
//! # Resolve points
//!
//! A geometry of EU depth `D` has `D + 1` *resolve points*, indexed by
//! the number of penalty cycles a mispredict at that point costs:
//!
//! * index `0` — resolved at cache-read (fetch) time, before the entry
//!   ever occupies an EU stage (the Branch Spreading payoff);
//! * index `s` for `1 ..= D-1` — resolved early from the stage that is
//!   `s` stages past fetch (at `D = 3` these are IR and OR);
//! * index `D` — resolved at retire (the folded-compare case; RR at
//!   `D = 3`).
//!
//! The engine stores EU slots in a fixed `[_; MAX_DEPTH]` array and
//! only iterates the live prefix, so changing depth costs no heap
//! allocation (the `alloc_free` test pins this) and the default
//! geometry remains bit-identical to the hard-coded 3-stage engine
//! (the `golden_geometry` test pins *that*).

use std::fmt;

/// Smallest supported EU depth: one execute stage plus retire.
pub const MIN_DEPTH: usize = 2;

/// Largest supported EU depth; sizes the engine's fixed stage array.
pub const MAX_DEPTH: usize = 8;

/// Resolve points of the deepest geometry (`MAX_DEPTH` stages plus the
/// fetch-time point); sizes [`StageHistogram`].
pub const MAX_RESOLVE_POINTS: usize = MAX_DEPTH + 1;

/// Depth of the paper's IR→OR→RR execution unit.
const CRISP_DEPTH: usize = 3;

/// The shape of the execution pipeline: how many stages an entry
/// traverses between issue (leaving the decoded-instruction cache) and
/// retire, and — derived from that — where branches can resolve and
/// what each resolution point costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineGeometry {
    /// Number of EU stages, `MIN_DEPTH ..= MAX_DEPTH`. Kept private so
    /// a constructed geometry is always in range.
    eu_depth: u8,
}

impl PipelineGeometry {
    /// The paper's machine: a 3-stage (IR→OR→RR) execution unit.
    pub const fn crisp() -> PipelineGeometry {
        PipelineGeometry {
            eu_depth: CRISP_DEPTH as u8,
        }
    }

    /// A geometry with `depth` EU stages.
    ///
    /// # Panics
    ///
    /// If `depth` is outside `MIN_DEPTH ..= MAX_DEPTH` — same contract
    /// as [`crate::SimConfig::validate`]: a bad experiment setup is a
    /// programming error, not a recoverable condition.
    pub fn new(depth: usize) -> PipelineGeometry {
        assert!(
            (MIN_DEPTH..=MAX_DEPTH).contains(&depth),
            "EU depth {depth} outside supported range {MIN_DEPTH}..={MAX_DEPTH}"
        );
        PipelineGeometry {
            eu_depth: depth as u8,
        }
    }

    /// Number of EU stages (the paper's machine: 3).
    pub const fn depth(self) -> usize {
        self.eu_depth as usize
    }

    /// Resolve-point index of the retire stage — also the worst-case
    /// mispredict penalty (the folded-compare case).
    pub const fn retire_stage(self) -> usize {
        self.eu_depth as usize
    }

    /// Number of distinct resolve points (`depth + 1`, counting the
    /// fetch-time point 0).
    pub const fn resolve_points(self) -> usize {
        self.eu_depth as usize + 1
    }

    /// Resolve point of a branch whose compare was spread `distance`
    /// entries ahead of it: distance 0 is the folded/adjacent compare
    /// resolving at retire, and each extra entry of spreading buys one
    /// stage, down to the free fetch-time resolution.
    pub const fn resolve_stage_for_distance(self, distance: usize) -> usize {
        self.retire_stage().saturating_sub(distance)
    }

    /// Display name of a resolve point, for traces and timelines. The
    /// default geometry keeps the paper's stage names.
    pub fn stage_name(self, stage: usize) -> String {
        if self.depth() == CRISP_DEPTH {
            match stage {
                0 => "fetch".to_string(),
                1 => "IR".to_string(),
                2 => "OR".to_string(),
                3 => "RR".to_string(),
                s => format!("stage{s}"),
            }
        } else if stage == 0 {
            "fetch".to_string()
        } else if stage == self.retire_stage() {
            "RR".to_string()
        } else {
            format!("E{stage}")
        }
    }

    /// One-character timeline glyph for the EU stage at `position`
    /// (0 = the stage an entry enters at issue, `depth-1` = retire).
    /// The default geometry draws the paper's `I`/`O`/`R`; deeper pipes
    /// draw `I`, digits for the middle stages, and `R` at retire.
    pub fn stage_char(self, position: usize) -> char {
        if self.depth() == CRISP_DEPTH {
            match position {
                0 => 'I',
                1 => 'O',
                _ => 'R',
            }
        } else if position == 0 {
            'I'
        } else if position + 1 == self.depth() {
            'R'
        } else {
            char::from_digit((position as u32 + 1).min(9), 10).unwrap_or('+')
        }
    }

    /// Timeline legend fragment naming the stage glyphs; the default
    /// geometry reproduces the original `I=IR O=OR R=RR` byte-for-byte.
    pub fn stage_legend(self) -> String {
        if self.depth() == CRISP_DEPTH {
            "I=IR O=OR R=RR".to_string()
        } else {
            let mut out = String::from("I=issue");
            for p in 1..self.depth() - 1 {
                out.push_str(&format!(" {}=E{}", self.stage_char(p), p + 1));
            }
            out.push_str(" R=retire");
            out
        }
    }
}

impl Default for PipelineGeometry {
    fn default() -> PipelineGeometry {
        PipelineGeometry::crisp()
    }
}

impl fmt::Display for PipelineGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D={}", self.depth())
    }
}

/// A histogram indexed by resolve point, sized to the live geometry.
///
/// This is the one shared representation behind
/// [`crate::CycleStats::mispredicts_by_stage`] and the per-site
/// `resolved_at`/`mispredicts_by_stage` arrays in
/// [`crate::SiteStats`] — previously three hand-written `[u64; 4]`s
/// with duplicated formatting. Storage is a fixed
/// `[u64; MAX_RESOLVE_POINTS]` (the type stays `Copy` and
/// allocation-free); only the live prefix `len` is compared, formatted
/// or summed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageHistogram {
    counts: [u64; MAX_RESOLVE_POINTS],
    len: u8,
}

impl StageHistogram {
    /// An empty histogram with one bucket per resolve point of `geo`.
    pub fn for_geometry(geo: PipelineGeometry) -> StageHistogram {
        StageHistogram::with_points(geo.resolve_points())
    }

    /// An empty histogram with `points` buckets (`points` must be at
    /// most [`MAX_RESOLVE_POINTS`]).
    pub fn with_points(points: usize) -> StageHistogram {
        assert!(
            (1..=MAX_RESOLVE_POINTS).contains(&points),
            "{points} resolve points outside 1..={MAX_RESOLVE_POINTS}"
        );
        StageHistogram {
            counts: [0; MAX_RESOLVE_POINTS],
            len: points as u8,
        }
    }

    /// Number of live buckets.
    #[allow(clippy::len_without_is_empty)] // "no buckets" is unrepresentable
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Increment the bucket for `stage`, clamping to the last live
    /// bucket (mirrors the old defensive `.min(3)` in the profiler).
    #[inline]
    pub fn bump(&mut self, stage: usize) {
        self.counts[stage.min(self.len as usize - 1)] += 1;
    }

    /// Count in one bucket (0 for out-of-range stages).
    pub fn get(&self, stage: usize) -> u64 {
        self.as_slice().get(stage).copied().unwrap_or(0)
    }

    /// The live buckets.
    pub fn as_slice(&self) -> &[u64] {
        &self.counts[..self.len as usize]
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.as_slice().iter().sum()
    }

    /// Cycles represented under the "index is the penalty" schedule:
    /// `Σ stage · count`.
    pub fn penalty_cycles(&self) -> u64 {
        self.as_slice()
            .iter()
            .enumerate()
            .map(|(stage, &n)| stage as u64 * n)
            .sum()
    }

    /// Add another histogram bucket-wise; the result keeps the longer
    /// live prefix (used when summing per-site histograms).
    pub fn merge(&mut self, other: &StageHistogram) {
        self.len = self.len.max(other.len);
        for (total, n) in self.counts.iter_mut().zip(other.counts) {
            *total += n;
        }
    }

    /// Compact JSON array of the live buckets: `[1,0,2,3]`.
    pub fn json(&self) -> String {
        let mut out = String::from("[");
        for (i, n) in self.as_slice().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push(']');
        out
    }
}

/// Defaults to the paper geometry's four resolve points, so
/// `CycleStats::default()` and `SiteStats::default()` behave exactly
/// as the old `[u64; 4]` fields did.
impl Default for StageHistogram {
    fn default() -> StageHistogram {
        StageHistogram::for_geometry(PipelineGeometry::crisp())
    }
}

/// Renders like `{:?}` on the old fixed array — `[1, 0, 2, 3]` — so
/// `CycleStats`' human-readable report is unchanged at the default
/// geometry.
impl fmt::Display for StageHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_slice())
    }
}

/// Read-only indexing over the live buckets, so counter comparisons
/// read like the old fixed-array field (`h[0]`, `h[3]`).
impl std::ops::Index<usize> for StageHistogram {
    type Output = u64;

    fn index(&self, stage: usize) -> &u64 {
        &self.as_slice()[stage]
    }
}

/// A plain array converts into a histogram whose live prefix is
/// exactly that array — handy for building expected values in tests.
impl<const N: usize> From<[u64; N]> for StageHistogram {
    fn from(arr: [u64; N]) -> StageHistogram {
        let mut h = StageHistogram::with_points(N);
        h.counts[..N].copy_from_slice(&arr);
        h
    }
}

/// A histogram equals a plain array when the live prefix matches it
/// exactly — keeps the many `assert_eq!(stats.mispredicts_by_stage,
/// [0, 0, 0, 1])`-style tests meaningful (and length-checked).
impl<const N: usize> PartialEq<[u64; N]> for StageHistogram {
    fn eq(&self, other: &[u64; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<StageHistogram> for [u64; N] {
    fn eq(&self, other: &StageHistogram) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crisp_geometry_matches_the_paper() {
        let g = PipelineGeometry::default();
        assert_eq!(g.depth(), 3);
        assert_eq!(g.retire_stage(), 3);
        assert_eq!(g.resolve_points(), 4);
        assert_eq!(g, PipelineGeometry::crisp());
        assert_eq!(g.to_string(), "D=3");
        assert_eq!(g.stage_name(0), "fetch");
        assert_eq!(g.stage_name(1), "IR");
        assert_eq!(g.stage_name(2), "OR");
        assert_eq!(g.stage_name(3), "RR");
        assert_eq!(g.stage_legend(), "I=IR O=OR R=RR");
        assert_eq!((0..3).map(|p| g.stage_char(p)).collect::<String>(), "IOR");
    }

    #[test]
    fn resolve_stage_scales_with_spreading_distance() {
        for d in MIN_DEPTH..=MAX_DEPTH {
            let g = PipelineGeometry::new(d);
            assert_eq!(g.resolve_stage_for_distance(0), d, "folded compare");
            assert_eq!(g.resolve_stage_for_distance(1), d - 1);
            assert_eq!(g.resolve_stage_for_distance(d), 0, "fully spread");
            assert_eq!(g.resolve_stage_for_distance(d + 5), 0, "saturates");
        }
    }

    #[test]
    fn deep_geometry_names_and_glyphs() {
        let g = PipelineGeometry::new(5);
        assert_eq!(g.stage_name(0), "fetch");
        assert_eq!(g.stage_name(2), "E2");
        assert_eq!(g.stage_name(5), "RR");
        assert_eq!((0..5).map(|p| g.stage_char(p)).collect::<String>(), "I234R");
        assert!(g.stage_legend().starts_with("I=issue"));
        assert!(g.stage_legend().ends_with("R=retire"));
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn depth_out_of_range_panics() {
        let _ = PipelineGeometry::new(MAX_DEPTH + 1);
    }

    #[test]
    fn histogram_matches_old_array_behaviour() {
        let mut h = StageHistogram::default();
        assert_eq!(h.len(), 4);
        h.bump(3);
        h.bump(0);
        h.bump(2);
        h.bump(2);
        h.bump(9); // clamps, like the old `.min(3)`
        assert_eq!(h, [1, 0, 2, 2]);
        assert_eq!([1, 0, 2, 2], h);
        assert_ne!(h, [1, 0, 2]); // length-checked
        assert_eq!(h.total(), 5);
        assert_eq!(h.penalty_cycles(), 3 + 3 + 2 + 2);
        assert_eq!(h.get(2), 2);
        assert_eq!(h.get(7), 0);
        assert_eq!(h.to_string(), "[1, 0, 2, 2]");
        assert_eq!(h.json(), "[1,0,2,2]");
    }

    #[test]
    fn histogram_sizes_to_geometry() {
        let mut h = StageHistogram::for_geometry(PipelineGeometry::new(5));
        assert_eq!(h.len(), 6);
        h.bump(5);
        assert_eq!(h, [0, 0, 0, 0, 0, 1]);
        assert_eq!(h.json(), "[0,0,0,0,0,1]");

        let mut sum = StageHistogram::default();
        sum.bump(1);
        sum.merge(&h);
        assert_eq!(sum.len(), 6, "merge keeps the longer prefix");
        assert_eq!(sum, [0, 1, 0, 0, 0, 1]);
    }
}

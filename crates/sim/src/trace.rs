use std::fmt;

/// The kind of a control transfer, for trace consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional branch (`ifjmp`).
    Cond,
    /// Unconditional branch (`jmp`, direct or indirect).
    Uncond,
    /// Subroutine call.
    Call,
    /// Subroutine return.
    Ret,
}

/// One dynamic branch occurrence, as recorded by the functional engine.
///
/// This is the input format of the prediction study (the paper modified
/// a VAX C compiler to emit equivalent instrumentation; we record the
/// same information from simulated execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Address of the branch instruction itself (for a folded branch,
    /// the address of the absorbed one-parcel branch, not its host).
    pub pc: u32,
    /// The taken-path target address (for conditional branches this is
    /// the branch target even on a not-taken occurrence, which is what a
    /// branch target buffer stores).
    pub target: u32,
    /// Whether the transfer happened (`true` for every unconditional
    /// event).
    pub taken: bool,
    /// Transfer kind.
    pub kind: BranchKind,
}

impl fmt::Display for BranchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#08x} -> {:#08x} {} ({:?})",
            self.pc,
            self.target,
            if self.taken { "taken" } else { "not-taken" },
            self.kind
        )
    }
}

/// A dynamic branch trace.
pub type Trace = Vec<BranchEvent>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BranchEvent {
            pc: 0x10,
            target: 0x40,
            taken: true,
            kind: BranchKind::Cond,
        };
        let s = e.to_string();
        assert!(s.contains("0x000010"));
        assert!(s.contains("taken"));
        assert!(s.contains("Cond"));
    }
}

use std::fmt;

use crisp_isa::IsaError;

/// Why a simulation run ended.
///
/// Runs that exhaust a watchdog limit ([`crate::SimConfig::max_cycles`]
/// / [`crate::SimConfig::max_insns`], or
/// [`crate::FunctionalSim::max_steps`]) end *gracefully* with
/// [`HaltReason::Watchdog`]: all statistics and architectural state up
/// to the limit are valid, the run just never reached `halt`. Fault
/// campaigns rely on this to classify hangs without timing out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HaltReason {
    /// The program executed `halt`.
    #[default]
    Halted,
    /// A watchdog limit expired before the program halted.
    Watchdog,
}

impl HaltReason {
    /// Stable kebab-case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            HaltReason::Halted => "halted",
            HaltReason::Watchdog => "watchdog",
        }
    }
}

/// Errors produced while loading or running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A data or instruction access fell outside simulated memory.
    MemOutOfBounds {
        /// The faulting byte address.
        addr: u32,
        /// Size of simulated memory in bytes.
        size: u32,
    },
    /// Instruction decode failed at a program counter the machine
    /// actually reached.
    Decode {
        /// The faulting PC.
        pc: u32,
        /// The underlying ISA error.
        source: IsaError,
    },
    /// The step/cycle limit was exceeded (runaway program guard).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// The image does not fit the configured memory size.
    ImageTooLarge {
        /// Bytes required by the image.
        required: u32,
        /// Bytes available.
        available: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemOutOfBounds { addr, size } => {
                write!(
                    f,
                    "memory access at {addr:#x} outside {size:#x}-byte memory"
                )
            }
            SimError::Decode { pc, source } => write!(f, "decode failed at {pc:#x}: {source}"),
            SimError::StepLimit { limit } => {
                write!(f, "execution exceeded the limit of {limit} steps")
            }
            SimError::ImageTooLarge {
                required,
                available,
            } => {
                write!(
                    f,
                    "image needs {required:#x} bytes but memory has {available:#x}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

//! Top-down cycle accounting: attribute every cycle to exactly one
//! cause.
//!
//! The paper's headline claim — branch folding reduces branch delay to
//! zero — is a statement about *where cycles go*, so the cycle engine
//! classifies each cycle by what its retire slot was doing: a valid
//! entry retiring is a **useful** cycle, and anything else is a bubble
//! carrying the cause that created it. The causes form a closed set
//! ([`BubbleCause`]) and the tally ([`CycleAccounts`]) obeys a
//! conservation invariant — the buckets sum to the total cycle count —
//! checked by a `debug_assert!` on every cycle and by the
//! `prop_accounting` property suite.
//!
//! # Bucket taxonomy
//!
//! * **useful** — a valid entry retired this cycle (equals
//!   [`crate::CycleStats::issued`] exactly).
//! * **branch penalty, by resolve stage** — the bubble was created when
//!   a mispredicted branch killed the wrong path; the bucket index is
//!   the stage at which that branch resolved (the paper's penalty
//!   schedule: index = cycles lost), covering both squashed in-flight
//!   slots draining to retire and the fetch slots the redirect
//!   suppressed. Fold-squash penalties (folded compare, resolved at
//!   retire) land in the retire-stage bucket; spread compares land in
//!   earlier, cheaper buckets.
//! * **miss refill** — fetch stalled on a decoded-cache miss while the
//!   PDU decoded the line.
//! * **parity recovery** — same stall, but the missing entry was
//!   invalidated by a parity check at read time (soft-error recovery
//!   rather than an ordinary cold/capacity miss).
//! * **indirect stall** — fetch waited for an indirect branch target
//!   (the structural stall: the next PC is not architected until the
//!   producing entry retires).
//! * **btb miss** — mispredict recovery, but the wrong guess came from
//!   a predictor-table *miss default* (a BTB or jump-trace lookup that
//!   found no resident entry and predicted fall-through) rather than
//!   from a trained entry's direction. Splitting these out separates a
//!   scheme's cold/capacity behaviour from its steady-state accuracy —
//!   the distinction behind the paper's "nearly as large as our entire
//!   microprocessor chip" sizing argument. Counter tables and the
//!   static bit always "hit", so this bucket is zero for them.
//! * **startup** — pipeline fill: no entry had reached retire yet.
//!
//! A bubble whose stall outlives the episode that caused it keeps its
//! *original* cause — e.g. a post-mispredict fetch that then misses is
//! charged to the miss, not the branch. Hence the reconciliation
//! invariant is one-sided: `branch_penalty.total() + btb_miss <=
//! mispredicts_by_stage.penalty_cycles()` (a mispredict's scheduled
//! penalty can overlap a stall already in progress, or still be
//! draining when the run ends; BTB-miss bubbles are mispredict
//! recovery too, just attributed to the miss default).
//!
//! Watchdog expiry consumes no cycles — the limit is checked between
//! cycles — so there is no watchdog bucket; a truncated run simply
//! stops accumulating, and [`CycleStats::cpi_breakdown`] notes the
//! truncation.
//!
//! [`CycleStats::cpi_breakdown`]: crate::CycleStats::cpi_breakdown

use std::fmt;

use crate::geometry::{PipelineGeometry, StageHistogram, MAX_DEPTH, MIN_DEPTH};

/// Why a pipeline retire slot carried no useful work on some cycle.
///
/// The cycle engine tags every non-useful retire-slot state with the
/// cause that created it; [`CycleAccounts::bubble`] turns the tag into
/// a bucket increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubbleCause {
    /// Pipeline fill: no entry has reached retire yet.
    Startup,
    /// Fetch stalled on a decoded-cache miss refill.
    MissRefill,
    /// Fetch stalled refilling an entry lost to a parity invalidate.
    ParityRecovery,
    /// Fetch waited for an indirect branch target to be architected.
    Indirect,
    /// Mispredict recovery where the wrong guess was a predictor-table
    /// miss default (no resident BTB/jump-trace entry), not a trained
    /// direction.
    BtbMiss,
    /// Mispredict recovery: the wrong path was killed by a branch that
    /// resolved at this stage index (the paper's penalty schedule —
    /// the index is the cost).
    Branch(u8),
}

/// Per-cause cycle tally with a conservation invariant: every simulated
/// cycle lands in exactly one bucket, so the buckets sum to
/// [`crate::CycleStats::cycles`] (checked in debug builds on every
/// cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleAccounts {
    /// Cycles in which a valid entry retired (equals `issued`).
    pub useful: u64,
    /// Mispredict-recovery bubbles, bucketed by the resolve stage of
    /// the branch that caused them (index = scheduled penalty).
    pub branch_penalty: StageHistogram,
    /// Cycles stalled on decoded-cache miss refills.
    pub miss_refill: u64,
    /// Cycles stalled refilling parity-invalidated entries.
    pub parity_recovery: u64,
    /// Cycles stalled waiting for an indirect branch target.
    pub indirect_stall: u64,
    /// Mispredict-recovery bubbles whose wrong guess was a
    /// predictor-table miss default (zero under the static bit and
    /// counter tables, which always "hit").
    pub btb_miss: u64,
    /// Pipeline-fill cycles before the first entry reached retire.
    pub startup: u64,
}

/// Defaults to the paper geometry's four branch-penalty buckets, so
/// `CycleStats::default()` keeps its historical shape.
impl Default for CycleAccounts {
    fn default() -> CycleAccounts {
        CycleAccounts::for_geometry(PipelineGeometry::crisp())
    }
}

impl CycleAccounts {
    /// An empty tally whose branch-penalty histogram has one bucket per
    /// resolve point of `geo`.
    pub fn for_geometry(geo: PipelineGeometry) -> CycleAccounts {
        CycleAccounts {
            useful: 0,
            branch_penalty: StageHistogram::for_geometry(geo),
            miss_refill: 0,
            parity_recovery: 0,
            indirect_stall: 0,
            btb_miss: 0,
            startup: 0,
        }
    }

    /// Record one bubble cycle under its cause.
    #[inline]
    pub fn bubble(&mut self, cause: BubbleCause) {
        match cause {
            BubbleCause::Startup => self.startup += 1,
            BubbleCause::MissRefill => self.miss_refill += 1,
            BubbleCause::ParityRecovery => self.parity_recovery += 1,
            BubbleCause::Indirect => self.indirect_stall += 1,
            BubbleCause::BtbMiss => self.btb_miss += 1,
            BubbleCause::Branch(stage) => self.branch_penalty.bump(stage as usize),
        }
    }

    /// Sum over every bucket — by construction equal to the total cycle
    /// count of the run that produced this tally.
    pub fn total(&self) -> u64 {
        self.useful
            + self.branch_penalty.total()
            + self.miss_refill
            + self.parity_recovery
            + self.indirect_stall
            + self.btb_miss
            + self.startup
    }

    /// The geometry this tally was sized for (recovered from the
    /// branch-penalty histogram's resolve-point count).
    fn geometry(&self) -> PipelineGeometry {
        PipelineGeometry::new((self.branch_penalty.len() - 1).clamp(MIN_DEPTH, MAX_DEPTH))
    }

    /// `(label, cycles)` rows of the breakdown, most fundamental first:
    /// useful issue, the aggregate branch penalty with per-stage
    /// sub-rows (indented, only the stages that occurred), then the
    /// structural buckets. Used by the `Display` impl and
    /// [`crate::CycleStats::cpi_breakdown`].
    pub fn rows(&self) -> Vec<(String, u64)> {
        let geo = self.geometry();
        let mut rows = vec![
            ("useful issue".to_string(), self.useful),
            ("branch penalty".to_string(), self.branch_penalty.total()),
        ];
        for stage in 1..self.branch_penalty.len() {
            let n = self.branch_penalty.get(stage);
            if n > 0 {
                rows.push((format!("  resolved at {}", geo.stage_name(stage)), n));
            }
        }
        rows.push(("cache miss refill".to_string(), self.miss_refill));
        rows.push(("parity recovery".to_string(), self.parity_recovery));
        rows.push(("indirect stall".to_string(), self.indirect_stall));
        rows.push(("btb miss penalty".to_string(), self.btb_miss));
        rows.push(("pipeline startup".to_string(), self.startup));
        rows
    }

    /// Compact JSON object of the buckets:
    /// `{"useful":9,"branch_penalty":[0,0,1,3],"miss_refill":4,...}`.
    pub fn json(&self) -> String {
        format!(
            concat!(
                r#"{{"useful":{},"branch_penalty":{},"miss_refill":{},"#,
                r#""parity_recovery":{},"indirect_stall":{},"btb_miss":{},"startup":{}}}"#
            ),
            self.useful,
            self.branch_penalty.json(),
            self.miss_refill,
            self.parity_recovery,
            self.indirect_stall,
            self.btb_miss,
            self.startup,
        )
    }
}

/// The share table: each bucket with its cycle count and percentage of
/// the total. [`crate::CycleStats::cpi_breakdown`] adds the per-bucket
/// CPI contribution on top of this.
impl fmt::Display for CycleAccounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        let denom = total.max(1) as f64;
        writeln!(f, "{:<24} {:>12} {:>8}", "bucket", "cycles", "share")?;
        for (label, cycles) in self.rows() {
            writeln!(
                f,
                "{label:<24} {cycles:>12} {:>7.2}%",
                cycles as f64 * 100.0 / denom
            )?;
        }
        writeln!(f, "{:<24} {total:>12} {:>7.2}%", "total", 100.0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CycleAccounts {
        let mut a = CycleAccounts::default();
        for _ in 0..9 {
            a.bubble(BubbleCause::Startup);
        }
        a.useful = 80;
        a.bubble(BubbleCause::Branch(3));
        a.bubble(BubbleCause::Branch(3));
        a.bubble(BubbleCause::Branch(3));
        a.bubble(BubbleCause::Branch(1));
        a.bubble(BubbleCause::MissRefill);
        a.bubble(BubbleCause::MissRefill);
        a.bubble(BubbleCause::ParityRecovery);
        a.bubble(BubbleCause::Indirect);
        a.bubble(BubbleCause::BtbMiss);
        a.bubble(BubbleCause::BtbMiss);
        a
    }

    #[test]
    fn buckets_conserve_and_dispatch() {
        let a = sample();
        assert_eq!(a.useful, 80);
        assert_eq!(a.branch_penalty, [0, 1, 0, 3]);
        assert_eq!(a.miss_refill, 2);
        assert_eq!(a.parity_recovery, 1);
        assert_eq!(a.indirect_stall, 1);
        assert_eq!(a.btb_miss, 2);
        assert_eq!(a.startup, 9);
        assert_eq!(a.total(), 80 + 4 + 2 + 1 + 1 + 2 + 9);
    }

    #[test]
    fn json_shape() {
        let a = sample();
        assert_eq!(
            a.json(),
            r#"{"useful":80,"branch_penalty":[0,1,0,3],"miss_refill":2,"parity_recovery":1,"indirect_stall":1,"btb_miss":2,"startup":9}"#
        );
    }

    #[test]
    fn rows_use_geometry_stage_names() {
        let a = sample();
        let rows = a.rows();
        assert_eq!(rows[0], ("useful issue".to_string(), 80));
        assert_eq!(rows[1], ("branch penalty".to_string(), 4));
        assert!(rows.iter().any(|(l, n)| l == "  resolved at IR" && *n == 1));
        assert!(rows.iter().any(|(l, n)| l == "  resolved at RR" && *n == 3));
        // Zero-count stages are elided from the sub-rows.
        assert!(!rows.iter().any(|(l, _)| l == "  resolved at OR"));

        let mut deep = CycleAccounts::for_geometry(PipelineGeometry::new(5));
        deep.bubble(BubbleCause::Branch(2));
        assert!(deep
            .rows()
            .iter()
            .any(|(l, n)| l == "  resolved at E2" && *n == 1));
    }

    #[test]
    fn display_shares_sum_to_total() {
        let text = sample().to_string();
        assert!(text.contains("useful issue"), "{text}");
        assert!(text.contains("resolved at RR"), "{text}");
        assert!(text.contains("100.00%"), "{text}");
        assert!(text.lines().last().unwrap().starts_with("total"), "{text}");
    }

    #[test]
    fn sized_to_geometry() {
        let a = CycleAccounts::for_geometry(PipelineGeometry::new(6));
        assert_eq!(a.branch_penalty.len(), 7);
        assert_eq!(a.total(), 0);
    }
}

//! Mini-C sources for every workload.

/// The paper's Figure 3 program, transcribed. The published listing
/// declares `zeros`/`ones` but uses `odd`/`even` in the body (a typo in
/// the paper); this transcription declares what the body uses. `sum` is
/// deliberately left uninitialised as in the paper — simulated memory is
/// zeroed, so the result is deterministic — keeping the Table 2 move
/// count at exactly 1027 (3 initialising moves + 1024 × `j = sum`).
pub const FIGURE3_SOURCE: &str = "
void main() {
    int i, j, odd, even, sum;
    j = odd = even = 0;
    for (i = 0; i < 1024; i++) {
        sum += i;
        if (i & 1) odd++;
        else even++;
        j = sum;
    }
}
";

/// Figure 3 with results exported to globals, for correctness checks.
pub const FIGURE3_CHECKED_SOURCE: &str = "
int out_sum; int out_odd; int out_even;
void main() {
    int i, j, odd, even, sum;
    sum = 0;
    j = odd = even = 0;
    for (i = 0; i < 1024; i++) {
        sum += i;
        if (i & 1) odd++;
        else even++;
        j = sum;
    }
    out_sum = sum;
    out_odd = odd;
    out_even = even;
}
";

/// Text-formatter proxy (stands in for troff): generates synthetic text
/// with an LCG, then runs word scanning, line filling and hyphenation.
/// Character-class branches are heavily biased, giving the ~0.9 static
/// accuracy the paper reports for troff.
pub const TROFF_PROXY_SOURCE: &str = "
int nlines; int nwords; int nchars; int nhyphens;
int text[8192];
int seed;

void main() {
    int i, c, col, wlen, lines, words, chars, hyph;

    seed = 12345;
    for (i = 0; i < 8192; i++) {
        seed = seed * 1103515245 + 12345;
        text[i] = (seed >> 16) & 31;
    }

    col = 0; lines = 0; words = 0; chars = 0; wlen = 0; hyph = 0;
    for (i = 0; i < 8192; i++) {
        c = text[i];
        if (c < 6) {
            if (wlen > 0) {
                words++;
                if (col + wlen > 60) {
                    lines++;
                    col = 0;
                }
                col += wlen + 1;
                wlen = 0;
            }
            if (c == 0) {
                lines++;
                col = 0;
            }
        } else {
            chars++;
            wlen++;
            if (wlen > 14) {
                hyph++;
                lines++;
                col = 0;
                wlen = 0;
            }
        }
    }
    nlines = lines;
    nwords = words;
    nchars = chars;
    nhyphens = hyph;
}
";

/// Compiler proxy (stands in for the paper's C-compiler workload): an
/// expression-parser state machine over a uniform synthetic token
/// stream. Many near-50/50 data-dependent branches give the ~0.75
/// accuracy band the paper reports for the C compiler.
pub const CC_PROXY_SOURCE: &str = "
int emits; int errors; int maxdepth;
int toks[8192];
int seed;

void main() {
    int i, t, state, depth;

    seed = 99;
    for (i = 0; i < 8192; i++) {
        seed = seed * 1103515245 + 12345;
        t = (seed >> 16) & 0x7fff;
        toks[i] = t % 7;
    }

    state = 0; depth = 0; emits = 0; errors = 0; maxdepth = 0;
    for (i = 0; i < 8192; i++) {
        t = toks[i];
        seed = seed * 1103515245 + 12345;
        if ((seed >> 13) & 1) emits++;
        if ((seed >> 14) & 1) { if ((seed >> 15) & 1) errors++; }
        if (state == 0) {
            if (t == 0) { state = 1; emits++; }
            else if (t == 1) { state = 1; emits++; }
            else if (t == 2) {
                depth++;
                if (depth > maxdepth) maxdepth = depth;
            }
            else errors++;
        } else {
            if (t == 3 || t == 4) state = 0;
            else if (t == 5) {
                if (depth > 0) depth--;
                else errors++;
            }
            else if (t == 6) { state = 0; emits++; }
            else { errors++; state = 0; }
        }
    }
}
";

/// Design-rule-checker proxy (stands in for the paper's VLSI DRC): a
/// 64x64 layout bitmap (~12% fill) scanned for spacing and width rules.
/// Sparse-hit tests give strongly biased branches (~0.9 static), with
/// dynamic history slightly ahead — the shape of the paper's DRC row.
pub const DRC_PROXY_SOURCE: &str = "
int violations; int cells;
int grid[4096];
int seed;

void main() {
    int x, y, v, idx;

    seed = 7;
    v = 0;
    for (idx = 0; idx < 4096; idx++) {
        seed = seed * 1103515245 + 12345;
        x = (seed >> 16) & 15;
        if (v) {
            if (x < 3) v = 0;
        } else {
            if (x < 1) v = 1;
        }
        grid[idx] = v;
    }

    violations = 0; cells = 0;
    for (y = 1; y < 63; y++) {
        for (x = 1; x < 63; x++) {
            idx = y * 64 + x;
            if (grid[idx]) {
                cells++;
                if (grid[idx - 65]) {
                    if (!grid[idx - 64] && !grid[idx - 1]) violations++;
                }
                if (grid[idx - 63]) {
                    if (!grid[idx - 64] && !grid[idx + 1]) violations++;
                }
                if (!grid[idx - 1] && !grid[idx + 1]) {
                    if (!grid[idx - 64] && !grid[idx + 64]) violations++;
                }
            }
        }
    }
}
";

/// Dhrystone-flavoured integer kernel: procedure calls, array traffic
/// and — crucially — alternating boolean flags. The paper found static
/// prediction *better* than dynamic history on Dhrystone because its
/// conditionals either always go one way or alternate; the `run & 1`
/// flags here reproduce that.
pub const DHRY_SOURCE: &str = "
int int_glob; int bool_glob; int ch_glob; int checksum;
int arr1[80];
int arr2[80];
int seed;

int func1(int a, int b) {
    if ((a & 15) == (b & 15)) return 0;
    return 1;
}

int func2(int a, int b) {
    if (a != b) return 1;
    int_glob = a;
    return 0;
}

void proc7(int a, int b) {
    int_glob = a + b + 2;
}

void proc8(int k) {
    int i;
    if (k >= 0) arr1[k] = k;
    arr1[k + 1] = arr1[k];
    for (i = 0; i < 4; i++) {
        if (k + i < 80) arr2[k + i] = k + i;
    }
}

void main() {
    int run, i, a, b;

    seed = 1;
    bool_glob = 0;
    for (run = 0; run < 400; run++) {
        seed = seed * 1103515245 + 12345;
        a = (seed >> 16) & 63;
        b = (seed >> 20) & 63;

        if (run & 1) bool_glob = 1;
        else bool_glob = 0;

        if (bool_glob) int_glob += 1;
        else int_glob += 2;

        if (func1(a, b)) ch_glob = 1;
        else ch_glob = 2;

        if (func2(a & 7, b & 7)) int_glob++;

        proc7(a, b);
        if (a < 60) proc8(a);

        i = 0;
        while (i < 3) {
            if (i < 2) a = a + i;
            i++;
        }
        if (a != b) checksum += 3;
        if (int_glob > 0) checksum++;
        if (seed != 0) checksum++;
        if (checksum > 0) ch_glob = 2;
        if (run >= 0) checksum += 2;
        checksum += int_glob + ch_glob + a;
    }
}
";

/// Integer-Whetstone-flavoured kernel: arithmetic modules under an
/// alternating even/odd control split plus 25%-taken case selectors —
/// the mix behind the paper's Cwhet row (static 0.84, 1-bit 0.68).
pub const CWHET_SOURCE: &str = "
int out; int seed;

int p3(int a, int b) {
    a = 2 * a;
    return (a + b) % 4096;
}

void main() {
    int i, j, k, x, y, z, n;

    x = 1; y = 2; z = 3; n = 300;
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) x = (x + y + z) / 3;
        else x = (x * 2 + y) / 3;

        for (j = 0; j < 6; j++) y = p3(x, y);

        k = i % 4;
        if (k == 0) z += 1;
        if (k == 1) z += 2;
        if (k == 2) z -= 3;
        if (z < 0) z = -z;
    }
    out = x + y + z;
}
";

/// Baskett's-Puzzle-flavoured recursive exhaustive search (reduced):
/// place pieces to hit an exact target, counting solutions. Short run
/// with biased feasibility tests, like the paper's 741-branch Puzzle
/// row where static prediction (0.92) beat dynamic history (0.87).
pub const PUZZLE_SOURCE: &str = "
int solutions; int calls;
int pieces[12];
int used[12];

int trial(int remaining, int start) {
    int i, r;
    calls++;
    if (remaining == 0) {
        solutions++;
        return 1;
    }
    r = 0;
    for (i = start; i < 12; i++) {
        if (!used[i]) {
            if (pieces[i] <= remaining) {
                used[i] = 1;
                r += trial(remaining - pieces[i], i + 1);
                used[i] = 0;
            }
        }
    }
    return r;
}

void main() {
    int i;
    for (i = 0; i < 12; i++) {
        pieces[i] = (i % 4) + 1;
        used[i] = 0;
    }
    solutions = trial(5, 0);
}
";

/// Interpreter-dispatch-loop workload: a toy bytecode VM executing a
/// synthetic LCG opcode stream through a dense `switch`, which the
/// compiler lowers to an indirect jump table. Every iteration takes an
/// indirect transfer whose target is decided by data — the worst case
/// for block chaining (the construct the paper says its compiler only
/// generates for switches), making this the stress workload for the
/// threaded tier's deopt/rejoin path and for indirect-jump prediction.
pub const DISPATCH_SOURCE: &str = "
int out_acc; int out_steps; int out_wraps;
int ops[4096];
int seed;

void main() {
    int i, op, acc, wraps;

    seed = 2026;
    for (i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        ops[i] = (seed >> 16) & 7;
    }

    acc = 0; wraps = 0;
    for (i = 0; i < 4096; i++) {
        op = ops[i];
        switch (op) {
            case 0: acc += 1; break;
            case 1: acc -= 1; break;
            case 2: acc += i & 63; break;
            case 3: acc ^= seed >> 12; break;
            case 4: acc = acc << 1; break;
            case 5: acc = acc >> 1; break;
            case 6: acc += 7; break;
            default:
                if (acc > 1000000) { acc = 0; wraps++; }
                break;
        }
    }
    out_acc = acc;
    out_steps = i;
    out_wraps = wraps;
}
";

/// Sort-kernel workload: insertion sort over an LCG-shuffled array.
/// The inner compare-and-shift loop branches on data order, so its
/// taken/not-taken stream starts near-random and drifts biased as the
/// prefix sorts — a branch-diverse input for the batched campaign
/// kernel (lanes running this diverge in length and in fold behaviour
/// under every policy). The sorted check and checksum pin the result.
pub const SORT_SOURCE: &str = "
int out_check; int out_swaps; int out_sorted;
int a[192];
int seed;

void main() {
    int i, j, key, swaps, check;

    seed = 7177;
    for (i = 0; i < 192; i++) {
        seed = seed * 1103515245 + 12345;
        a[i] = (seed >> 16) & 0x3ff;
    }

    swaps = 0;
    for (i = 1; i < 192; i++) {
        key = a[i];
        j = i;
        while (j > 0 && a[j - 1] > key) {
            a[j] = a[j - 1];
            j = j - 1;
            swaps++;
        }
        a[j] = key;
    }

    check = 0;
    out_sorted = 1;
    for (i = 0; i < 192; i++) {
        check = check * 31 + a[i];
        if (i > 0) { if (a[i - 1] > a[i]) out_sorted = 0; }
    }
    out_check = check;
    out_swaps = swaps;
}
";

/// Table-driven state machine workload: an 8-state x 8-class
/// transition table built at startup, then driven by an LCG input
/// stream. Control flow is decided by indexed table loads rather than
/// compare chains — short data-dependent branches off loaded state,
/// the complementary branch shape to the sort kernel's loop-carried
/// compares.
pub const FSM_SOURCE: &str = "
int out_accepts; int out_rejects; int out_hash;
int trans[64];
int inputs[4096];
int seed;

void main() {
    int i, s, c, accepts, rejects, hash;

    for (s = 0; s < 8; s++) {
        for (c = 0; c < 8; c++) {
            if (c == s) trans[s * 8 + c] = (s + 1) & 7;
            else if (c == ((s + 3) & 7)) trans[s * 8 + c] = 0;
            else if (c & 1) trans[s * 8 + c] = s;
            else trans[s * 8 + c] = (s + c) & 7;
        }
    }
    seed = 4241;
    for (i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        inputs[i] = (seed >> 16) & 7;
    }

    s = 0; accepts = 0; rejects = 0; hash = 0;
    for (i = 0; i < 4096; i++) {
        c = inputs[i];
        s = trans[s * 8 + c];
        if (s == 7) { accepts++; s = 0; }
        else if (s == 0) { if (c != 0) rejects++; }
        hash = hash * 5 + s;
    }
    out_accepts = accepts;
    out_rejects = rejects;
    out_hash = hash;
}
";

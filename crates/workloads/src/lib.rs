//! Benchmark programs for the CRISP reproduction.
//!
//! * [`FIGURE3_SOURCE`] — the paper's Figure 3 evaluation program,
//!   transcribed (the published listing initialises `zeros`/`ones` but
//!   uses `odd`/`even`; this transcription declares the variables the
//!   body actually uses, keeping the dynamic instruction counts of
//!   Table 2: 3 initialising moves, 1024 iterations).
//! * [`prediction_workloads`] — the six programs of the Table 1
//!   prediction study. The paper's three large programs (troff, the C
//!   compiler, a VLSI design-rule checker) are proprietary, so each is
//!   replaced by a proxy exercising the same *class* of branch
//!   behaviour; Dhrystone, Cwhet and Puzzle are replaced by mini-C
//!   kernels reproducing their documented branch character — including
//!   the alternating-direction branches that made static prediction
//!   beat dynamic history on those benchmarks.
//!
//! All programs are deterministic (synthetic inputs come from a fixed
//! linear congruential generator) and write their results to globals so
//! tests can check them.

#![warn(missing_docs)]

mod sources;

pub use sources::{
    CC_PROXY_SOURCE, CWHET_SOURCE, DHRY_SOURCE, DISPATCH_SOURCE, DRC_PROXY_SOURCE,
    FIGURE3_CHECKED_SOURCE, FIGURE3_SOURCE, FSM_SOURCE, PUZZLE_SOURCE, SORT_SOURCE,
    TROFF_PROXY_SOURCE,
};

/// A named benchmark program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Short name (matches the paper's Table 1 rows).
    pub name: &'static str,
    /// What the program models and why its branch behaviour matches the
    /// paper's original.
    pub description: &'static str,
    /// Mini-C source.
    pub source: &'static str,
}

/// The paper's Figure 3 program with a custom loop count (the paper:
/// "The results are relatively independent of the actual loop count").
pub fn figure3_with_count(count: u32) -> String {
    FIGURE3_SOURCE.replace("1024", &count.to_string())
}

/// Iteration count of the large Figure 3 throughput workload.
pub const FIGURE3_LARGE_ITERS: u32 = 4096;

/// The Figure 3 program at [`FIGURE3_LARGE_ITERS`] iterations: the
/// "large" workload of the simulator-throughput benchmarks, long enough
/// (tens of thousands of commits per run) that per-run setup — machine
/// loading, predecode, cache warm-up — is amortised away and the
/// steady-state cycle loop dominates the measurement.
pub fn figure3_large() -> String {
    figure3_with_count(FIGURE3_LARGE_ITERS)
}

/// The interpreter-dispatch workload ([`DISPATCH_SOURCE`]): a toy
/// bytecode VM whose dense `switch` lowers to an indirect jump table,
/// so every iteration takes a data-driven indirect transfer. This is
/// the adversarial case for the threaded-code tier (indirect targets
/// are never chained) and the stress input for its deopt/rejoin path.
pub fn dispatch_workload() -> Workload {
    Workload {
        name: "dispatch",
        description: "toy bytecode interpreter: dense-switch dispatch over \
                      a synthetic LCG opcode stream (indirect jump table \
                      every iteration)",
        source: DISPATCH_SOURCE,
    }
}

/// The sort-kernel workload ([`SORT_SOURCE`]): insertion sort over an
/// LCG-shuffled array, whose inner compare-and-shift loop branches on
/// data order — near-random early, increasingly biased as the prefix
/// sorts. One of the two branch-diverse campaign workloads.
pub fn sort_workload() -> Workload {
    Workload {
        name: "sort",
        description: "insertion sort over an LCG-shuffled array: \
                      data-order compare-and-shift branches, near-random \
                      early and biased late",
        source: SORT_SOURCE,
    }
}

/// The table-driven state machine workload ([`FSM_SOURCE`]): an
/// 8-state x 8-class transition table driven by an LCG input stream,
/// so control flow hangs off indexed table loads rather than compare
/// chains. The complementary branch shape to [`sort_workload`].
pub fn fsm_workload() -> Workload {
    Workload {
        name: "fsm",
        description: "table-driven state machine: 8x8 transition table \
                      over an LCG input stream (branches off loaded \
                      state, not compare chains)",
        source: FSM_SOURCE,
    }
}

/// The two branch-diverse campaign workloads fed to the batched
/// campaign-kernel benchmarks, in a stable order.
pub fn campaign_workloads() -> Vec<Workload> {
    vec![sort_workload(), fsm_workload()]
}

/// The six programs of the Table 1 prediction study, in the paper's row
/// order.
pub fn prediction_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "troff-proxy",
            description: "text formatter: word scanning, line filling and \
                          hyphenation over synthetic text (stands in for troff; \
                          heavily biased character-class branches)",
            source: TROFF_PROXY_SOURCE,
        },
        Workload {
            name: "cc-proxy",
            description: "expression parser state machine over a synthetic \
                          token stream (stands in for the C compiler; \
                          data-dependent multiway branches)",
            source: CC_PROXY_SOURCE,
        },
        Workload {
            name: "drc-proxy",
            description: "design-rule checker: spacing/width rules over a \
                          synthetic 64x64 layout bitmap (stands in for the \
                          VLSI DRC; sparse-hit test branches)",
            source: DRC_PROXY_SOURCE,
        },
        Workload {
            name: "dhry",
            description: "Dhrystone-flavoured integer kernel: procedure calls, \
                          record-ish array traffic, and the alternating \
                          boolean flags that defeat dynamic history",
            source: DHRY_SOURCE,
        },
        Workload {
            name: "cwhet",
            description: "integer Whetstone-flavoured kernel: arithmetic \
                          modules with alternating even/odd control",
            source: CWHET_SOURCE,
        },
        Workload {
            name: "puzzle",
            description: "recursive exhaustive search over piece placements \
                          (Baskett's Puzzle, reduced): short run, biased \
                          feasibility tests",
            source: PUZZLE_SOURCE,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_cc::{compile_crisp, CompileOptions};
    use crisp_sim::{BranchKind, FunctionalSim, Machine};

    fn run(src: &str) -> crisp_sim::FunctionalRun {
        let image = compile_crisp(src, &CompileOptions::default()).unwrap();
        FunctionalSim::new(Machine::load(&image).unwrap())
            .record_trace(true)
            .run()
            .unwrap()
    }

    fn global(r: &crisp_sim::FunctionalRun, index: u32) -> i32 {
        r.machine
            .mem
            .read_word(crisp_asm::Image::DEFAULT_DATA_BASE + 4 * index)
            .unwrap()
    }

    #[test]
    fn figure3_on_disk_copy_matches_embedded_source() {
        // CI smoke runs feed `workloads/figure3.c` to crisp-run; pin
        // the file to the embedded source so the two cannot drift.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../workloads/figure3.c");
        let on_disk = std::fs::read_to_string(path).expect("workloads/figure3.c exists");
        assert_eq!(on_disk.trim(), FIGURE3_SOURCE.trim());
    }

    #[test]
    fn dispatch_on_disk_copy_matches_embedded_source() {
        // CI smoke runs feed `workloads/dispatch.c` to crisp-run; pin
        // the file to the embedded source so the two cannot drift.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../workloads/dispatch.c");
        let on_disk = std::fs::read_to_string(path).expect("workloads/dispatch.c exists");
        assert_eq!(on_disk.trim(), DISPATCH_SOURCE.trim());
    }

    #[test]
    fn sort_on_disk_copy_matches_embedded_source() {
        // Pin `workloads/sort.c` to the embedded source so the CLI-
        // visible file and the benchmarked program cannot drift.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../workloads/sort.c");
        let on_disk = std::fs::read_to_string(path).expect("workloads/sort.c exists");
        assert_eq!(on_disk.trim(), SORT_SOURCE.trim());
    }

    #[test]
    fn fsm_on_disk_copy_matches_embedded_source() {
        // Pin `workloads/fsm.c` to the embedded source so the CLI-
        // visible file and the benchmarked program cannot drift.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../workloads/fsm.c");
        let on_disk = std::fs::read_to_string(path).expect("workloads/fsm.c exists");
        assert_eq!(on_disk.trim(), FSM_SOURCE.trim());
    }

    #[test]
    fn sort_kernel_sorts_and_is_branch_diverse() {
        let r = run(SORT_SOURCE);
        assert!(r.halted);
        assert_eq!(global(&r, 2), 1, "array not sorted"); // out_sorted
        assert!(global(&r, 1) > 1000, "swaps = {}", global(&r, 1));
        let conds = r
            .trace
            .iter()
            .filter(|e| e.kind == BranchKind::Cond)
            .count();
        assert!(conds > 5000, "only {conds} conditional branches");
    }

    #[test]
    fn fsm_accepts_and_rejects() {
        let r = run(FSM_SOURCE);
        assert!(r.halted);
        assert!(global(&r, 0) > 10, "accepts = {}", global(&r, 0));
        assert!(global(&r, 1) > 10, "rejects = {}", global(&r, 1));
        let conds = r
            .trace
            .iter()
            .filter(|e| e.kind == BranchKind::Cond)
            .count();
        assert!(conds > 5000, "only {conds} conditional branches");
    }

    #[test]
    fn campaign_workloads_are_deterministic() {
        for w in campaign_workloads() {
            let a = run(w.source);
            let b = run(w.source);
            assert_eq!(a.machine, b.machine, "{}", w.name);
            assert_eq!(a.trace, b.trace, "{}", w.name);
        }
    }

    #[test]
    fn dispatch_executes_indirect_transfers() {
        let r = run(DISPATCH_SOURCE);
        assert!(r.halted);
        assert_eq!(global(&r, 1), 4096); // out_steps: every opcode retired
        let uncond = r
            .trace
            .iter()
            .filter(|e| e.kind == BranchKind::Uncond)
            .count();
        // Each iteration dispatches through the jump table.
        assert!(uncond >= 4096, "only {uncond} unconditional transfers");
    }

    #[test]
    fn dispatch_is_deterministic() {
        let a = run(DISPATCH_SOURCE);
        let b = run(DISPATCH_SOURCE);
        assert_eq!(a.machine, b.machine);
        assert_eq!(global(&a, 0), global(&b, 0));
    }

    #[test]
    fn figure3_checked_results() {
        let r = run(FIGURE3_CHECKED_SOURCE);
        assert_eq!(global(&r, 0), (0..1024).sum::<i32>()); // out_sum
        assert_eq!(global(&r, 1), 512); // out_odd
        assert_eq!(global(&r, 2), 512); // out_even
    }

    #[test]
    fn figure3_paper_shape_instruction_counts() {
        // The paper's Table 2: 9734 total CRISP instructions, with
        // add 3072, if-jump 2048, cmp 2048, move 1027, and 1024,
        // jump 513, enter 1, return 1. Our entry stub adds call+halt.
        let image = compile_crisp(
            FIGURE3_SOURCE,
            &CompileOptions {
                spread: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let r = FunctionalSim::new(Machine::load(&image).unwrap())
            .run()
            .unwrap();
        let ops = &r.stats.opcodes;
        assert_eq!(ops.get("add"), 3072);
        assert_eq!(ops.get("if-jump"), 2048);
        assert_eq!(ops.get("cmp"), 2048);
        // 1028 = the paper's 1027 (3 chained-assignment moves + 1024
        // `j = sum`) plus our explicit `i = 0` move.
        assert_eq!(ops.get("move"), 1028);
        assert_eq!(ops.get("and"), 1024);
        // Loop inversion removes the entry jump the paper still counted
        // (their 513 = 512 else-skips + 1); the other counts match.
        assert_eq!(ops.get("jump"), 512);
        assert_eq!(ops.get("enter"), 1);
        assert_eq!(ops.get("return"), 1);
        assert_eq!(ops.get("call"), 1); // entry stub
        assert_eq!(ops.get("halt"), 1); // entry stub
        assert_eq!(ops.get("leave"), 1); // paper folds this into `return`
                                         // Paper total: 9734. Ours: 9737 = 9734 - 1 (no entry jump;
                                         // inverted loop) + 1 (`i = 0` move) + 1 (explicit leave)
                                         // + 2 (entry-stub call + halt).
        assert_eq!(r.stats.program_instrs, 9737);
    }

    #[test]
    fn figure3_count_parameter() {
        let src = figure3_with_count(64);
        let image = compile_crisp(&src, &CompileOptions::default()).unwrap();
        let r = FunctionalSim::new(Machine::load(&image).unwrap())
            .run()
            .unwrap();
        assert!(r.halted);
        assert!(r.stats.program_instrs < 1000);
    }

    #[test]
    fn figure3_large_runs_to_completion() {
        let image = compile_crisp(&figure3_large(), &CompileOptions::default()).unwrap();
        let r = FunctionalSim::new(Machine::load(&image).unwrap())
            .max_steps(2_000_000)
            .run()
            .unwrap();
        assert!(r.halted);
        // Dynamic length scales with the iteration count: ~9.5 CRISP
        // instructions per iteration (Table 2 shape).
        assert!(r.stats.program_instrs > u64::from(FIGURE3_LARGE_ITERS) * 9);
    }

    #[test]
    fn all_prediction_workloads_run_to_completion() {
        for w in prediction_workloads() {
            let r = run(w.source);
            assert!(r.halted, "{} did not halt", w.name);
            let conds = r
                .trace
                .iter()
                .filter(|e| e.kind == BranchKind::Cond)
                .count();
            assert!(conds > 200, "{}: only {conds} conditional branches", w.name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in prediction_workloads() {
            let a = run(w.source);
            let b = run(w.source);
            assert_eq!(a.stats.program_instrs, b.stats.program_instrs, "{}", w.name);
            assert_eq!(a.trace, b.trace, "{}", w.name);
        }
    }

    #[test]
    fn troff_proxy_produces_lines_and_words() {
        let r = run(TROFF_PROXY_SOURCE);
        assert!(global(&r, 0) > 10, "nlines = {}", global(&r, 0));
        assert!(global(&r, 1) > 100, "nwords = {}", global(&r, 1));
    }

    #[test]
    fn cc_proxy_counts_tokens() {
        let r = run(CC_PROXY_SOURCE);
        let emits = global(&r, 0);
        let errors = global(&r, 1);
        assert!(emits > 100);
        assert!(errors > 0);
    }

    #[test]
    fn drc_proxy_finds_violations() {
        let r = run(DRC_PROXY_SOURCE);
        assert!(global(&r, 0) > 0, "violations = {}", global(&r, 0));
        assert!(global(&r, 1) > 100, "cells = {}", global(&r, 1));
    }

    #[test]
    fn puzzle_counts_solutions() {
        let r = run(PUZZLE_SOURCE);
        let solutions = global(&r, 0);
        let calls = global(&r, 1);
        assert!(solutions > 0);
        assert!(calls > solutions);
    }

    #[test]
    fn spreading_does_not_change_workload_results() {
        for w in prediction_workloads() {
            let plain = {
                let image = compile_crisp(
                    w.source,
                    &CompileOptions {
                        spread: false,
                        ..Default::default()
                    },
                )
                .unwrap();
                FunctionalSim::new(Machine::load(&image).unwrap())
                    .run()
                    .unwrap()
            };
            let spread = run(w.source);
            for g in 0..4 {
                assert_eq!(
                    global(&plain, g),
                    global(&spread, g),
                    "{} global {g}",
                    w.name
                );
            }
        }
    }
}

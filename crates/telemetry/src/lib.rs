//! Campaign telemetry for the CRISP reproduction's long-running
//! drivers (`crisp-diff`, `crisp-fault`, and the future `crisp-serve`).
//!
//! A campaign fans a work list out over a pool of worker threads; this
//! crate watches it without slowing it down:
//!
//! * [`Counter`] — a relaxed atomic counter (one `fetch_add` per
//!   update, no locks on the record path);
//! * [`DurationHisto`] — a log₂-bucketed latency histogram with
//!   approximate percentile readout, fixed-size and lock-free;
//! * [`CampaignMonitor`] — the per-campaign aggregate each worker
//!   updates once per case (done count, findings, per-worker busy
//!   time, case-latency histogram);
//! * [`Heartbeat`] — a sampling thread that emits one JSONL snapshot
//!   to stderr per period (throughput, utilization, queue depth,
//!   p50/p99 latency, ETA) and a final machine-readable campaign
//!   report when told to finish.
//!
//! The record path is a handful of relaxed atomic adds — well under
//! the drivers' 2% overhead budget — and snapshots are computed
//! entirely on the heartbeat thread, so an unmonitored campaign pays
//! nothing but the `Instant` pair around each case. Everything is
//! plain `std`; there are no dependencies.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A lock-free event counter (relaxed atomics: totals are exact once
/// the writers quiesce, and monotonic while they run — all a monitor
/// needs).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`DurationHisto`]: one per possible bit
/// length of a nanosecond count.
const HISTO_BUCKETS: usize = 64;

/// A log₂-bucketed duration histogram: a sample of `n` nanoseconds
/// lands in the bucket indexed by `n`'s bit length, so the whole range
/// from nanoseconds to minutes fits in 64 lock-free counters and a
/// recorded sample costs one relaxed `fetch_add`.
///
/// Percentiles read back as the upper power-of-two bound of the bucket
/// holding the requested rank — within 2× of the true value, which is
/// the right fidelity for heartbeat monitoring.
#[derive(Debug)]
pub struct DurationHisto {
    buckets: [AtomicU64; HISTO_BUCKETS],
}

impl Default for DurationHisto {
    fn default() -> DurationHisto {
        DurationHisto::new()
    }
}

impl DurationHisto {
    /// An empty histogram.
    pub fn new() -> DurationHisto {
        DurationHisto {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index of a sample: the bit length of its nanosecond
    /// count (0 for a zero-length sample).
    fn bucket_of(d: Duration) -> usize {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        (u64::BITS - ns.leading_zeros()) as usize % HISTO_BUCKETS
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate `p`-th percentile (`0.0 ..= 1.0`): the upper bound
    /// of the bucket containing that rank, or zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_nanos(1u64 << i.min(62));
            }
        }
        Duration::from_nanos(1u64 << 62)
    }
}

/// Shared telemetry for one campaign: workers call
/// [`CampaignMonitor::record_case`] once per completed case (a few
/// relaxed atomic adds), and the heartbeat thread reads a consistent-
/// enough [`Snapshot`] whenever it samples.
#[derive(Debug)]
pub struct CampaignMonitor {
    /// Cases this invocation set out to run (after any checkpoint
    /// resume — resumed campaigns monitor the remaining work).
    total: u64,
    start: Instant,
    done: Counter,
    findings: Counter,
    retries: Counter,
    quarantined: Counter,
    latency: DurationHisto,
    busy_ns: Vec<Counter>,
}

impl CampaignMonitor {
    /// A monitor for a campaign of `total` cases over `workers`
    /// threads, with the clock starting now.
    pub fn new(total: u64, workers: usize) -> CampaignMonitor {
        CampaignMonitor {
            total,
            start: Instant::now(),
            done: Counter::new(),
            findings: Counter::new(),
            retries: Counter::new(),
            quarantined: Counter::new(),
            latency: DurationHisto::new(),
            busy_ns: (0..workers.max(1)).map(|_| Counter::new()).collect(),
        }
    }

    /// Record one finished case: `worker` spent `elapsed` on it.
    pub fn record_case(&self, worker: usize, elapsed: Duration) {
        self.done.inc();
        self.latency.record(elapsed);
        self.busy_ns[worker % self.busy_ns.len()]
            .add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one finding (a divergence, a vulnerable fault outcome —
    /// whatever the campaign hunts).
    pub fn record_finding(&self) {
        self.findings.inc();
    }

    /// Record one case retry: the first attempt died (panicked or
    /// tripped the watchdog) and the supervisor is re-running it on
    /// fresh buffers.
    pub fn record_retry(&self) {
        self.retries.inc();
    }

    /// Record one quarantined case: the bounded retry also failed, so
    /// the supervisor set the case aside and kept the campaign going.
    pub fn record_quarantine(&self) {
        self.quarantined.inc();
    }

    /// Cases completed so far.
    pub fn done(&self) -> u64 {
        self.done.get()
    }

    /// Findings recorded so far.
    pub fn findings(&self) -> u64 {
        self.findings.get()
    }

    /// Retries recorded so far.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Quarantined cases recorded so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.get()
    }

    /// Sample the campaign's current state.
    pub fn snapshot(&self) -> Snapshot {
        let elapsed = self.start.elapsed();
        let done = self.done.get();
        let rate = done as f64 / elapsed.as_secs_f64().max(1e-9);
        let queue_depth = self.total.saturating_sub(done);
        // Guard the projection: `Duration::from_secs_f64` panics on a
        // non-finite or overflowing input, and the very first heartbeat
        // fires with done == 0 (no ETA) or with an elapsed time so
        // small the division can blow up. An unprojectable ETA is
        // `None` — serialized as JSON null — never a panic or an `inf`
        // in the JSONL stream.
        let eta = if rate > 0.0 && queue_depth > 0 {
            let secs = queue_depth as f64 / rate;
            (secs.is_finite() && secs < 1e15).then(|| Duration::from_secs_f64(secs))
        } else {
            None
        };
        let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let utilization = self
            .busy_ns
            .iter()
            .map(|c| (c.get() as f64 / elapsed_ns.max(1) as f64).min(1.0))
            .collect();
        Snapshot {
            elapsed,
            done,
            total: self.total,
            queue_depth,
            findings: self.findings.get(),
            retries: self.retries.get(),
            quarantined: self.quarantined.get(),
            rate_per_s: rate,
            utilization,
            p50: self.latency.percentile(0.50),
            p99: self.latency.percentile(0.99),
            eta,
        }
    }
}

/// One sampled view of a campaign, as emitted by the heartbeat.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Wall time since the monitor was created.
    pub elapsed: Duration,
    /// Cases completed.
    pub done: u64,
    /// Cases this invocation set out to run.
    pub total: u64,
    /// Cases not yet completed (`total - done`).
    pub queue_depth: u64,
    /// Findings recorded so far.
    pub findings: u64,
    /// Case retries so far (first attempts that died and were re-run).
    pub retries: u64,
    /// Cases quarantined so far (retry also failed; set aside).
    pub quarantined: u64,
    /// Completed cases per second of wall time.
    pub rate_per_s: f64,
    /// Per-worker busy fraction (`0.0 ..= 1.0`) since the start.
    pub utilization: Vec<f64>,
    /// Approximate median case latency.
    pub p50: Duration,
    /// Approximate 99th-percentile case latency.
    pub p99: Duration,
    /// Projected time to drain the queue at the current rate, when the
    /// rate is nonzero and work remains.
    pub eta: Option<Duration>,
}

/// Append `x` to `out` with `prec` decimal places — or the literal
/// `null` when `x` is not finite. `{:.3}`-formatting an `inf` or `NaN`
/// would emit a bare `inf`/`NaN` token, which is not JSON: one bad
/// float would make the whole heartbeat line unparseable downstream.
fn write_json_f64(out: &mut String, x: f64, prec: usize) {
    if x.is_finite() {
        let _ = write!(out, "{x:.prec$}");
    } else {
        out.push_str("null");
    }
}

impl Snapshot {
    /// The snapshot as one flat JSONL record. `kind` is the `type`
    /// field — `"heartbeat"` for periodic lines, `"final"` for the
    /// end-of-campaign report. Every float field is either a finite
    /// number or JSON `null`; the line always parses.
    pub fn to_json(&self, kind: &str) -> String {
        let mut out = format!(r#"{{"type":"{kind}","elapsed_s":"#);
        write_json_f64(&mut out, self.elapsed.as_secs_f64(), 3);
        let _ = write!(
            out,
            r#","done":{},"total":{},"queue_depth":{},"findings":{},"retries":{},"quarantined":{},"rate_per_s":"#,
            self.done, self.total, self.queue_depth, self.findings, self.retries, self.quarantined,
        );
        write_json_f64(&mut out, self.rate_per_s, 3);
        out.push_str(r#","p50_ms":"#);
        write_json_f64(&mut out, self.p50.as_secs_f64() * 1e3, 3);
        out.push_str(r#","p99_ms":"#);
        write_json_f64(&mut out, self.p99.as_secs_f64() * 1e3, 3);
        out.push_str(r#","eta_s":"#);
        match self.eta {
            Some(eta) => write_json_f64(&mut out, eta.as_secs_f64(), 1),
            None => out.push_str("null"),
        }
        out.push_str(r#","utilization":["#);
        for (i, &u) in self.utilization.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_f64(&mut out, u, 3);
        }
        out.push_str("]}");
        out
    }
}

/// How finely the heartbeat thread slices its sleep, so `finish` never
/// waits a full period for the thread to notice the stop flag.
const STOP_POLL: Duration = Duration::from_millis(25);

/// The heartbeat thread: emits one snapshot line to stderr immediately
/// (so even sub-period campaigns produce a heartbeat), then one per
/// `period`, and a `"final"` report line on [`Heartbeat::finish`].
#[derive(Debug)]
pub struct Heartbeat {
    monitor: Arc<CampaignMonitor>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawn the heartbeat thread over `monitor`, sampling every
    /// `period`.
    pub fn start(monitor: Arc<CampaignMonitor>, period: Duration) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let monitor = Arc::clone(&monitor);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                eprintln!("{}", monitor.snapshot().to_json("heartbeat"));
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < period {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let slice = STOP_POLL.min(period - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    eprintln!("{}", monitor.snapshot().to_json("heartbeat"));
                }
            })
        };
        Heartbeat {
            monitor,
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the heartbeat thread and emit the final campaign report
    /// (one `"type":"final"` JSONL line on stderr).
    pub fn finish(mut self) {
        self.stop_thread();
        eprintln!("{}", self.monitor.snapshot().to_json("final"));
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Dropping without [`Heartbeat::finish`] (e.g. on a panic unwinding
/// through the driver) still stops the thread; it just skips the final
/// report.
impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histo_buckets_by_magnitude() {
        let h = DurationHisto::new();
        assert_eq!(h.percentile(0.5), Duration::ZERO, "empty histogram");
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // ~2^14 ns
        }
        h.record(Duration::from_millis(100)); // ~2^27 ns
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.50);
        assert!(
            p50 >= Duration::from_micros(10) && p50 < Duration::from_micros(20),
            "{p50:?}"
        );
        let p99 = h.percentile(0.99);
        assert!(p99 < Duration::from_millis(1), "{p99:?}");
        let p100 = h.percentile(1.0);
        assert!(p100 >= Duration::from_millis(100), "{p100:?}");
    }

    #[test]
    fn monitor_snapshot_and_json_shape() {
        let m = CampaignMonitor::new(10, 2);
        m.record_case(0, Duration::from_millis(2));
        m.record_case(1, Duration::from_millis(4));
        m.record_case(0, Duration::from_millis(2));
        m.record_finding();
        m.record_retry();
        m.record_quarantine();
        let s = m.snapshot();
        assert_eq!(s.done, 3);
        assert_eq!(s.total, 10);
        assert_eq!(s.queue_depth, 7);
        assert_eq!(s.findings, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.quarantined, 1);
        assert!(s.rate_per_s > 0.0);
        assert_eq!(s.utilization.len(), 2);
        assert!(s.utilization.iter().all(|u| (0.0..=1.0).contains(u)));
        assert!(s.eta.is_some());

        let json = s.to_json("heartbeat");
        assert!(json.starts_with(r#"{"type":"heartbeat","#), "{json}");
        assert!(json.contains(r#""done":3,"total":10"#), "{json}");
        assert!(json.contains(r#""queue_depth":7"#), "{json}");
        assert!(json.contains(r#""findings":1"#), "{json}");
        assert!(json.contains(r#""retries":1,"quarantined":1"#), "{json}");
        assert!(json.contains(r#""p99_ms":"#), "{json}");
        assert!(json.contains(r#""utilization":["#), "{json}");
        assert!(json.ends_with("]}"), "{json}");

        // A drained campaign has no ETA: the field is JSON null.
        let done = CampaignMonitor::new(1, 1);
        done.record_case(0, Duration::from_millis(1));
        let json = done.snapshot().to_json("final");
        assert!(json.contains(r#""eta_s":null"#), "{json}");
    }

    /// Minimal JSON well-formedness check: balanced braces/brackets and
    /// no bare `inf`/`NaN` tokens (what `{:.3}` would print for a
    /// non-finite float, and what breaks downstream line parsers).
    fn assert_parseable(json: &str) {
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        let mut depth = 0i32;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "{json}");
        }
        assert_eq!(depth, 0, "{json}");
        for tok in ["inf", "NaN"] {
            assert!(!json.contains(tok), "non-JSON float token in {json}");
        }
    }

    #[test]
    fn first_snapshot_with_nothing_done_is_parseable() {
        // The heartbeat thread emits a line the instant it starts,
        // before any case completes: done == 0, rate == 0, no ETA.
        let m = CampaignMonitor::new(100, 4);
        let s = m.snapshot();
        assert_eq!(s.done, 0);
        assert_eq!(s.eta, None);
        let json = s.to_json("heartbeat");
        assert_parseable(&json);
        assert!(json.contains(r#""eta_s":null"#), "{json}");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let s = Snapshot {
            elapsed: Duration::ZERO,
            done: 0,
            total: 10,
            queue_depth: 10,
            findings: 0,
            retries: 0,
            quarantined: 0,
            rate_per_s: f64::INFINITY,
            utilization: vec![f64::NAN, 0.5],
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            eta: None,
        };
        let json = s.to_json("heartbeat");
        assert_parseable(&json);
        assert!(json.contains(r#""rate_per_s":null"#), "{json}");
        assert!(json.contains(r#""utilization":[null,0.500]"#), "{json}");
    }

    #[test]
    fn heartbeat_emits_immediately_and_finishes() {
        let m = Arc::new(CampaignMonitor::new(2, 1));
        let hb = Heartbeat::start(Arc::clone(&m), Duration::from_secs(60));
        m.record_case(0, Duration::from_millis(1));
        m.record_case(0, Duration::from_millis(1));
        // The first heartbeat line is emitted at start, so even this
        // instant campaign produced one; finish adds the final report.
        hb.finish();
        assert_eq!(m.done(), 2);
    }
}

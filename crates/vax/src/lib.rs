//! VAX-lite: a small VAX-subset instruction set and functional VM.
//!
//! The paper's Table 2 compares dynamic instruction counts between CRISP
//! and a VAX for the Figure 3 program, with VAX code "generated directly
//! from our standard compilers". We do not have a VAX or its compiler,
//! so this crate provides the minimal substrate that preserves what the
//! comparison measures: a register/memory ISA with VAX mnemonics
//! (`movl`, `incl`, `addl2`, `cmpl`, `bitl`, `jbr`, `jeql`, `jgeq`, ...)
//! and a functional VM that executes programs and histograms executed
//! opcodes.
//!
//! Deliberate simplifications (documented in DESIGN.md): instructions
//! are kept as structured values rather than encoded bytes (only counts
//! matter for Table 2); condition codes are set by the explicit test
//! instructions `cmpl`/`tstl`/`bitl` only (our code generator — like the
//! paper's listing — always emits one of those before a conditional
//! branch); and locals are pre-assigned word slots instead of
//! frame-pointer offsets (no recursion is needed by any Table 2
//! workload).
//!
//! # Example
//!
//! ```
//! use vax_lite::{Operand, Program, VaxInstr};
//!
//! let mut p = Program::new();
//! let counter = p.alloc_slot("i");
//! p.label("top");
//! p.push(VaxInstr::Incl(Operand::Loc(counter)));
//! p.push(VaxInstr::Cmpl(Operand::Loc(counter), Operand::Imm(10)));
//! p.push_branch(VaxInstr::Jlss(0), "top");
//! p.push(VaxInstr::Halt);
//! let run = p.run(1_000_000)?;
//! assert_eq!(run.memory[counter as usize], 10);
//! assert_eq!(run.counts.get("incl"), 10);
//! # Ok::<(), vax_lite::VaxError>(())
//! ```

#![warn(missing_docs)]

mod instr;
mod program;
mod vm;

pub use instr::{Operand, VaxInstr};
pub use program::Program;
pub use vm::{Counts, RunResult, VaxError, Vm};

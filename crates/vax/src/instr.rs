use std::fmt;

/// A VAX-lite operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general register `r0..r11`.
    Reg(u8),
    /// An immediate (literal) value.
    Imm(i32),
    /// A word slot in data memory (pre-assigned local or global).
    Loc(u32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Loc(a) => write!(f, "L{a}"),
        }
    }
}

/// One VAX-lite instruction. Branch targets are instruction indices
/// (resolved from labels by [`crate::Program`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror VAX mnemonics; see `mnemonic`
pub enum VaxInstr {
    /// `dst = 0`.
    Clrl(Operand),
    /// `dst = src` (sets no condition codes in this model).
    Movl(Operand, Operand),
    /// `dst += 1`.
    Incl(Operand),
    /// `dst -= 1`.
    Decl(Operand),
    /// `dst += src`.
    Addl2(Operand, Operand),
    /// `dst = a + b`.
    Addl3(Operand, Operand, Operand),
    /// `dst -= src`.
    Subl2(Operand, Operand),
    /// `dst = a - b` (operand order as VAX `subl3 sub, min, dst`
    /// simplified to `dst = a - b`).
    Subl3(Operand, Operand, Operand),
    /// `dst *= src`.
    Mull2(Operand, Operand),
    /// `dst /= src` (division by zero yields 0).
    Divl2(Operand, Operand),
    /// `dst = ~src` (one's complement).
    Mcoml(Operand, Operand),
    /// `dst &= ~src` (bit clear — the VAX has no `andl`; compilers
    /// synthesise AND from `mcoml` + `bicl2`).
    Bicl2(Operand, Operand),
    /// `dst |= src` (bit set).
    Bisl2(Operand, Operand),
    /// `dst ^= src`.
    Xorl2(Operand, Operand),
    /// `dst = src` arithmetically shifted by `cnt` bits (positive =
    /// left, negative = right), VAX `ashl cnt, src, dst`.
    Ashl(Operand, Operand, Operand),
    /// Compare: condition codes from `a - b`.
    Cmpl(Operand, Operand),
    /// Test: condition codes from `a`.
    Tstl(Operand),
    /// Bit test: condition codes from `a & b`.
    Bitl(Operand, Operand),
    /// Unconditional branch to an instruction index.
    Jbr(usize),
    /// Branch if equal (Z).
    Jeql(usize),
    /// Branch if not equal (!Z).
    Jneq(usize),
    /// Branch if less (N).
    Jlss(usize),
    /// Branch if less or equal (N | Z).
    Jleq(usize),
    /// Branch if greater (!N & !Z).
    Jgtr(usize),
    /// Branch if greater or equal (!N).
    Jgeq(usize),
    /// Call the function at an instruction index.
    Calls(usize),
    /// Return to the caller.
    Ret,
    /// Stop the VM.
    Halt,
}

impl VaxInstr {
    /// The VAX mnemonic used in Table 2.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            VaxInstr::Clrl(..) => "clrl",
            VaxInstr::Movl(..) => "movl",
            VaxInstr::Incl(..) => "incl",
            VaxInstr::Decl(..) => "decl",
            VaxInstr::Addl2(..) => "addl2",
            VaxInstr::Addl3(..) => "addl3",
            VaxInstr::Subl2(..) => "subl2",
            VaxInstr::Subl3(..) => "subl3",
            VaxInstr::Mull2(..) => "mull2",
            VaxInstr::Divl2(..) => "divl2",
            VaxInstr::Mcoml(..) => "mcoml",
            VaxInstr::Bicl2(..) => "bicl2",
            VaxInstr::Bisl2(..) => "bisl2",
            VaxInstr::Xorl2(..) => "xorl2",
            VaxInstr::Ashl(..) => "ashl",
            VaxInstr::Cmpl(..) => "cmpl",
            VaxInstr::Tstl(..) => "tstl",
            VaxInstr::Bitl(..) => "bitl",
            VaxInstr::Jbr(..) => "jbr",
            VaxInstr::Jeql(..) => "jeql",
            VaxInstr::Jneq(..) => "jneq",
            VaxInstr::Jlss(..) => "jlss",
            VaxInstr::Jleq(..) => "jleq",
            VaxInstr::Jgtr(..) => "jgtr",
            VaxInstr::Jgeq(..) => "jgeq",
            VaxInstr::Calls(..) => "calls",
            VaxInstr::Ret => "ret",
            VaxInstr::Halt => "halt",
        }
    }

    /// The branch-target index, if this is a branch/call, together with
    /// a setter — used by [`crate::Program`] when resolving labels.
    pub(crate) fn target_mut(&mut self) -> Option<&mut usize> {
        match self {
            VaxInstr::Jbr(t)
            | VaxInstr::Jeql(t)
            | VaxInstr::Jneq(t)
            | VaxInstr::Jlss(t)
            | VaxInstr::Jleq(t)
            | VaxInstr::Jgtr(t)
            | VaxInstr::Jgeq(t)
            | VaxInstr::Calls(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for VaxInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaxInstr::Clrl(d) | VaxInstr::Incl(d) | VaxInstr::Decl(d) | VaxInstr::Tstl(d) => {
                write!(f, "{} {d}", self.mnemonic())
            }
            VaxInstr::Movl(d, s)
            | VaxInstr::Addl2(d, s)
            | VaxInstr::Subl2(d, s)
            | VaxInstr::Mull2(d, s)
            | VaxInstr::Divl2(d, s)
            | VaxInstr::Cmpl(d, s)
            | VaxInstr::Bitl(d, s)
            | VaxInstr::Mcoml(d, s)
            | VaxInstr::Bicl2(d, s)
            | VaxInstr::Bisl2(d, s)
            | VaxInstr::Xorl2(d, s) => write!(f, "{} {d},{s}", self.mnemonic()),
            VaxInstr::Ashl(d, c, s) => write!(f, "{} {c},{s},{d}", self.mnemonic()),
            VaxInstr::Addl3(d, a, b) | VaxInstr::Subl3(d, a, b) => {
                write!(f, "{} {a},{b},{d}", self.mnemonic())
            }
            VaxInstr::Jbr(t)
            | VaxInstr::Jeql(t)
            | VaxInstr::Jneq(t)
            | VaxInstr::Jlss(t)
            | VaxInstr::Jleq(t)
            | VaxInstr::Jgtr(t)
            | VaxInstr::Jgeq(t)
            | VaxInstr::Calls(t) => write!(f, "{} @{t}", self.mnemonic()),
            VaxInstr::Ret | VaxInstr::Halt => f.write_str(self.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_table2_names() {
        assert_eq!(VaxInstr::Incl(Operand::Reg(0)).mnemonic(), "incl");
        assert_eq!(VaxInstr::Jbr(0).mnemonic(), "jbr");
        assert_eq!(
            VaxInstr::Bitl(Operand::Reg(0), Operand::Imm(1)).mnemonic(),
            "bitl"
        );
        assert_eq!(VaxInstr::Jgeq(0).mnemonic(), "jgeq");
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            VaxInstr::Movl(Operand::Loc(3), Operand::Imm(5)).to_string(),
            "movl L3,$5"
        );
        assert_eq!(VaxInstr::Jeql(7).to_string(), "jeql @7");
        assert_eq!(
            VaxInstr::Addl3(Operand::Reg(1), Operand::Loc(0), Operand::Imm(2)).to_string(),
            "addl3 L0,$2,r1"
        );
    }

    #[test]
    fn target_mut_covers_all_branches() {
        let mut i = VaxInstr::Jgeq(3);
        *i.target_mut().unwrap() = 9;
        assert_eq!(i, VaxInstr::Jgeq(9));
        assert!(VaxInstr::Ret.target_mut().is_none());
        assert!(VaxInstr::Halt.target_mut().is_none());
        assert!(VaxInstr::Incl(Operand::Reg(0)).target_mut().is_none());
    }
}

use std::collections::BTreeMap;

use crate::{RunResult, VaxError, VaxInstr, Vm};

/// A VAX-lite program under construction: instructions, labels and a
/// slot allocator for locals/globals.
#[derive(Debug, Clone, Default)]
pub struct Program {
    instrs: Vec<VaxInstr>,
    labels: BTreeMap<String, usize>,
    /// `(instruction index, label)` fixups applied by [`Program::finish`].
    fixups: Vec<(usize, String)>,
    slots: BTreeMap<String, u32>,
    next_slot: u32,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Allocate (or look up) a named word slot in data memory.
    pub fn alloc_slot(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.next_slot;
        self.next_slot += 1;
        self.slots.insert(name.to_owned(), s);
        s
    }

    /// The slot previously allocated for `name`.
    pub fn slot(&self, name: &str) -> Option<u32> {
        self.slots.get(name).copied()
    }

    /// Define a label at the current instruction index.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition (a code-generator bug).
    pub fn label(&mut self, name: &str) {
        let here = self.instrs.len();
        assert!(
            self.labels.insert(name.to_owned(), here).is_none(),
            "duplicate label {name}"
        );
    }

    /// Append an instruction.
    pub fn push(&mut self, instr: VaxInstr) {
        self.instrs.push(instr);
    }

    /// Append a branch/call whose target is a label (resolved at
    /// [`Program::finish`] time; the index inside `instr` is ignored).
    pub fn push_branch(&mut self, instr: VaxInstr, label: &str) {
        let at = self.instrs.len();
        self.fixups.push((at, label.to_owned()));
        self.instrs.push(instr);
    }

    /// Number of instructions so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Resolve labels and return the executable instruction list.
    ///
    /// # Errors
    ///
    /// [`VaxError::UndefinedLabel`] when a branch references a label
    /// that was never defined.
    pub fn finish(mut self) -> Result<Vec<VaxInstr>, VaxError> {
        for (at, label) in &self.fixups {
            let &target = self
                .labels
                .get(label)
                .ok_or_else(|| VaxError::UndefinedLabel {
                    label: label.clone(),
                })?;
            *self.instrs[*at]
                .target_mut()
                .expect("push_branch only accepts branch instructions") = target;
        }
        Ok(self.instrs)
    }

    /// Resolve labels and run to `halt` (convenience wrapper).
    ///
    /// # Errors
    ///
    /// Any [`VaxError`] from label resolution or execution.
    pub fn run(self, max_steps: u64) -> Result<RunResult, VaxError> {
        let slots = self.next_slot;
        let instrs = self.finish()?;
        Vm::new(instrs, slots.max(64)).run(max_steps)
    }

    /// Render the program as an assembly listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let by_index: BTreeMap<usize, &str> = self
            .labels
            .iter()
            .map(|(name, &i)| (i, name.as_str()))
            .collect();
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            if let Some(name) = by_index.get(&i) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "    {instr}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operand;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut p = Program::new();
        p.label("top");
        p.push(VaxInstr::Incl(Operand::Reg(0)));
        p.push_branch(VaxInstr::Jbr(0), "end");
        p.push_branch(VaxInstr::Jbr(0), "top");
        p.label("end");
        p.push(VaxInstr::Halt);
        let instrs = p.finish().unwrap();
        assert_eq!(instrs[1], VaxInstr::Jbr(3));
        assert_eq!(instrs[2], VaxInstr::Jbr(0));
    }

    #[test]
    fn undefined_label_errors() {
        let mut p = Program::new();
        p.push_branch(VaxInstr::Jbr(0), "nowhere");
        assert!(matches!(p.finish(), Err(VaxError::UndefinedLabel { .. })));
    }

    #[test]
    fn slots_are_stable() {
        let mut p = Program::new();
        let a = p.alloc_slot("a");
        let b = p.alloc_slot("b");
        assert_ne!(a, b);
        assert_eq!(p.alloc_slot("a"), a);
        assert_eq!(p.slot("b"), Some(b));
        assert_eq!(p.slot("c"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut p = Program::new();
        p.label("x");
        p.label("x");
    }

    #[test]
    fn listing_shows_labels() {
        let mut p = Program::new();
        p.label("main");
        p.push(VaxInstr::Halt);
        let text = p.listing();
        assert!(text.contains("main:"));
        assert!(text.contains("halt"));
    }
}

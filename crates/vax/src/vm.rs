use std::collections::BTreeMap;
use std::fmt;

use crate::{Operand, VaxInstr};

/// Errors from building or running VAX-lite programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VaxError {
    /// A branch referenced an undefined label.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// A memory slot index outside the VM's data memory.
    BadSlot {
        /// The offending slot.
        slot: u32,
    },
    /// `ret` with an empty call stack.
    ReturnUnderflow,
    /// The PC ran past the last instruction without `halt`.
    FellOffEnd,
    /// Step limit exceeded.
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for VaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaxError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            VaxError::BadSlot { slot } => write!(f, "slot {slot} outside data memory"),
            VaxError::ReturnUnderflow => write!(f, "ret with empty call stack"),
            VaxError::FellOffEnd => write!(f, "execution ran past the last instruction"),
            VaxError::StepLimit { limit } => write!(f, "exceeded {limit} steps"),
        }
    }
}

impl std::error::Error for VaxError {}

/// Dynamic opcode histogram (`mnemonic → count`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counts {
    map: BTreeMap<&'static str, u64>,
}

impl Counts {
    /// Count for one mnemonic.
    pub fn get(&self, mnemonic: &str) -> u64 {
        self.map.get(mnemonic).copied().unwrap_or(0)
    }

    /// Total executed instructions.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// `(mnemonic, count)` sorted by descending count, ties by name.
    pub fn sorted_desc(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.map.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    fn bump(&mut self, mnemonic: &'static str) {
        *self.map.entry(mnemonic).or_insert(0) += 1;
    }
}

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final data memory (word slots).
    pub memory: Vec<i32>,
    /// Final registers.
    pub regs: [i32; 12],
    /// Executed-opcode histogram.
    pub counts: Counts,
}

/// The functional VAX-lite virtual machine.
#[derive(Debug, Clone)]
pub struct Vm {
    instrs: Vec<VaxInstr>,
    memory: Vec<i32>,
    regs: [i32; 12],
    /// Condition codes N and Z (set by `cmpl`, `tstl`, `bitl`).
    n: bool,
    z: bool,
    call_stack: Vec<usize>,
    counts: Counts,
}

impl Vm {
    /// Create a VM for `instrs` with `data_slots` words of zeroed data
    /// memory.
    pub fn new(instrs: Vec<VaxInstr>, data_slots: u32) -> Vm {
        Vm {
            instrs,
            memory: vec![0; data_slots as usize],
            regs: [0; 12],
            n: false,
            z: false,
            call_stack: Vec::new(),
            counts: Counts::default(),
        }
    }

    fn read(&self, op: Operand) -> Result<i32, VaxError> {
        match op {
            Operand::Reg(r) => Ok(self.regs[r as usize % 12]),
            Operand::Imm(v) => Ok(v),
            Operand::Loc(s) => self
                .memory
                .get(s as usize)
                .copied()
                .ok_or(VaxError::BadSlot { slot: s }),
        }
    }

    fn write(&mut self, op: Operand, value: i32) -> Result<(), VaxError> {
        match op {
            Operand::Reg(r) => {
                self.regs[r as usize % 12] = value;
                Ok(())
            }
            Operand::Imm(_) => {
                debug_assert!(false, "write to immediate");
                Ok(())
            }
            Operand::Loc(s) => match self.memory.get_mut(s as usize) {
                Some(slot) => {
                    *slot = value;
                    Ok(())
                }
                None => Err(VaxError::BadSlot { slot: s }),
            },
        }
    }

    fn set_cc(&mut self, value: i32) {
        self.n = value < 0;
        self.z = value == 0;
    }

    /// Run until `halt`.
    ///
    /// # Errors
    ///
    /// Any [`VaxError`] raised during execution.
    pub fn run(mut self, max_steps: u64) -> Result<RunResult, VaxError> {
        let mut pc = 0usize;
        for _ in 0..max_steps {
            let instr = *self.instrs.get(pc).ok_or(VaxError::FellOffEnd)?;
            self.counts.bump(instr.mnemonic());
            pc += 1;
            match instr {
                VaxInstr::Clrl(d) => self.write(d, 0)?,
                VaxInstr::Movl(d, s) => {
                    let v = self.read(s)?;
                    self.write(d, v)?;
                }
                VaxInstr::Incl(d) => {
                    let v = self.read(d)?.wrapping_add(1);
                    self.write(d, v)?;
                }
                VaxInstr::Decl(d) => {
                    let v = self.read(d)?.wrapping_sub(1);
                    self.write(d, v)?;
                }
                VaxInstr::Addl2(d, s) => {
                    let v = self.read(d)?.wrapping_add(self.read(s)?);
                    self.write(d, v)?;
                }
                VaxInstr::Addl3(d, a, b) => {
                    let v = self.read(a)?.wrapping_add(self.read(b)?);
                    self.write(d, v)?;
                }
                VaxInstr::Subl2(d, s) => {
                    let v = self.read(d)?.wrapping_sub(self.read(s)?);
                    self.write(d, v)?;
                }
                VaxInstr::Subl3(d, a, b) => {
                    let v = self.read(a)?.wrapping_sub(self.read(b)?);
                    self.write(d, v)?;
                }
                VaxInstr::Mull2(d, s) => {
                    let v = self.read(d)?.wrapping_mul(self.read(s)?);
                    self.write(d, v)?;
                }
                VaxInstr::Divl2(d, s) => {
                    let b = self.read(s)?;
                    let a = self.read(d)?;
                    let v = if b == 0 || (a == i32::MIN && b == -1) {
                        0
                    } else {
                        a / b
                    };
                    self.write(d, v)?;
                }
                VaxInstr::Mcoml(d, s) => {
                    let v = !self.read(s)?;
                    self.write(d, v)?;
                }
                VaxInstr::Bicl2(d, s) => {
                    let v = self.read(d)? & !self.read(s)?;
                    self.write(d, v)?;
                }
                VaxInstr::Bisl2(d, s) => {
                    let v = self.read(d)? | self.read(s)?;
                    self.write(d, v)?;
                }
                VaxInstr::Xorl2(d, s) => {
                    let v = self.read(d)? ^ self.read(s)?;
                    self.write(d, v)?;
                }
                VaxInstr::Ashl(d, c, s) => {
                    let cnt = self.read(c)?;
                    let src = self.read(s)?;
                    let v = if cnt >= 0 {
                        ((src as u32) << (cnt as u32 & 31)) as i32
                    } else {
                        src >> ((-cnt) as u32 & 31)
                    };
                    self.write(d, v)?;
                }
                VaxInstr::Cmpl(a, b) => {
                    let v = self.read(a)?.wrapping_sub(self.read(b)?);
                    self.set_cc(v);
                }
                VaxInstr::Tstl(a) => {
                    let v = self.read(a)?;
                    self.set_cc(v);
                }
                VaxInstr::Bitl(a, b) => {
                    let v = self.read(a)? & self.read(b)?;
                    self.set_cc(v);
                }
                VaxInstr::Jbr(t) => pc = t,
                VaxInstr::Jeql(t) => {
                    if self.z {
                        pc = t;
                    }
                }
                VaxInstr::Jneq(t) => {
                    if !self.z {
                        pc = t;
                    }
                }
                VaxInstr::Jlss(t) => {
                    if self.n {
                        pc = t;
                    }
                }
                VaxInstr::Jleq(t) => {
                    if self.n || self.z {
                        pc = t;
                    }
                }
                VaxInstr::Jgtr(t) => {
                    if !self.n && !self.z {
                        pc = t;
                    }
                }
                VaxInstr::Jgeq(t) => {
                    if !self.n {
                        pc = t;
                    }
                }
                VaxInstr::Calls(t) => {
                    self.call_stack.push(pc);
                    pc = t;
                }
                VaxInstr::Ret => {
                    pc = self.call_stack.pop().ok_or(VaxError::ReturnUnderflow)?;
                }
                VaxInstr::Halt => {
                    return Ok(RunResult {
                        memory: self.memory,
                        regs: self.regs,
                        counts: self.counts,
                    });
                }
            }
        }
        Err(VaxError::StepLimit { limit: max_steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    #[test]
    fn counted_loop() {
        let mut p = Program::new();
        let i = p.alloc_slot("i");
        let sum = p.alloc_slot("sum");
        p.push(VaxInstr::Clrl(Operand::Loc(i)));
        p.push(VaxInstr::Clrl(Operand::Loc(sum)));
        p.label("top");
        p.push(VaxInstr::Cmpl(Operand::Loc(i), Operand::Imm(10)));
        p.push_branch(VaxInstr::Jgeq(0), "done");
        p.push(VaxInstr::Addl2(Operand::Loc(sum), Operand::Loc(i)));
        p.push(VaxInstr::Incl(Operand::Loc(i)));
        p.push_branch(VaxInstr::Jbr(0), "top");
        p.label("done");
        p.push(VaxInstr::Halt);
        let r = p.run(10_000).unwrap();
        assert_eq!(r.memory[sum as usize], 45);
        assert_eq!(r.counts.get("cmpl"), 11);
        assert_eq!(r.counts.get("jgeq"), 11);
        assert_eq!(r.counts.get("jbr"), 10);
        assert_eq!(r.counts.get("incl"), 10);
    }

    #[test]
    fn bitl_tests_without_modifying() {
        let mut p = Program::new();
        let x = p.alloc_slot("x");
        p.push(VaxInstr::Movl(Operand::Loc(x), Operand::Imm(5)));
        p.push(VaxInstr::Bitl(Operand::Loc(x), Operand::Imm(1)));
        p.push_branch(VaxInstr::Jneq(0), "odd");
        p.push(VaxInstr::Halt); // even path: x stays 5
        p.label("odd");
        p.push(VaxInstr::Movl(Operand::Loc(x), Operand::Imm(99)));
        p.push(VaxInstr::Halt);
        let r = p.run(100).unwrap();
        assert_eq!(r.memory[x as usize], 99);
    }

    #[test]
    fn calls_and_ret() {
        let mut p = Program::new();
        p.push_branch(VaxInstr::Calls(0), "f");
        p.push(VaxInstr::Halt);
        p.label("f");
        p.push(VaxInstr::Movl(Operand::Reg(0), Operand::Imm(7)));
        p.push(VaxInstr::Ret);
        let r = p.run(100).unwrap();
        assert_eq!(r.regs[0], 7);
        assert_eq!(r.counts.get("calls"), 1);
        assert_eq!(r.counts.get("ret"), 1);
    }

    #[test]
    fn condition_code_semantics() {
        for (a, b, jlss, jeql, jgtr) in [
            (1, 2, true, false, false),
            (2, 2, false, true, false),
            (3, 2, false, false, true),
        ] {
            let mut p = Program::new();
            let out = p.alloc_slot("out");
            p.push(VaxInstr::Cmpl(Operand::Imm(a), Operand::Imm(b)));
            p.push_branch(VaxInstr::Jlss(0), "lss");
            p.push_branch(VaxInstr::Jeql(0), "eql");
            p.push(VaxInstr::Movl(Operand::Loc(out), Operand::Imm(3)));
            p.push(VaxInstr::Halt);
            p.label("lss");
            p.push(VaxInstr::Movl(Operand::Loc(out), Operand::Imm(1)));
            p.push(VaxInstr::Halt);
            p.label("eql");
            p.push(VaxInstr::Movl(Operand::Loc(out), Operand::Imm(2)));
            p.push(VaxInstr::Halt);
            let r = p.run(100).unwrap();
            let expected = if jlss {
                1
            } else if jeql {
                2
            } else {
                assert!(jgtr);
                3
            };
            assert_eq!(r.memory[out as usize], expected, "cmp {a},{b}");
        }
    }

    #[test]
    fn errors() {
        let p = Vm::new(vec![VaxInstr::Ret], 4);
        assert_eq!(p.run(10).unwrap_err(), VaxError::ReturnUnderflow);
        let p = Vm::new(vec![VaxInstr::Incl(Operand::Reg(0))], 4);
        assert_eq!(p.run(10).unwrap_err(), VaxError::FellOffEnd);
        let p = Vm::new(vec![VaxInstr::Jbr(0)], 4);
        assert_eq!(p.run(10).unwrap_err(), VaxError::StepLimit { limit: 10 });
        let p = Vm::new(vec![VaxInstr::Incl(Operand::Loc(99)), VaxInstr::Halt], 4);
        assert_eq!(p.run(10).unwrap_err(), VaxError::BadSlot { slot: 99 });
    }

    #[test]
    fn division_semantics() {
        let mut p = Program::new();
        let x = p.alloc_slot("x");
        p.push(VaxInstr::Movl(Operand::Loc(x), Operand::Imm(7)));
        p.push(VaxInstr::Divl2(Operand::Loc(x), Operand::Imm(2)));
        p.push(VaxInstr::Halt);
        assert_eq!(p.run(100).unwrap().memory[x as usize], 3);
        let mut p = Program::new();
        let x = p.alloc_slot("x");
        p.push(VaxInstr::Movl(Operand::Loc(x), Operand::Imm(7)));
        p.push(VaxInstr::Divl2(Operand::Loc(x), Operand::Imm(0)));
        p.push(VaxInstr::Halt);
        assert_eq!(p.run(100).unwrap().memory[x as usize], 0);
    }

    #[test]
    fn run_result_counts_totals() {
        let mut p = Program::new();
        p.push(VaxInstr::Clrl(Operand::Reg(0)));
        p.push(VaxInstr::Incl(Operand::Reg(0)));
        p.push(VaxInstr::Halt);
        let r = p.run(100).unwrap();
        assert_eq!(r.counts.total(), 3);
        let sorted = r.counts.sorted_desc();
        assert_eq!(sorted.len(), 3);
        assert!(sorted.iter().all(|&(_, c)| c == 1));
    }
}

use crisp_sim::{BranchEvent, Trace};

use crate::Predictor;

/// Geometry of a branch target buffer.
///
/// The paper quotes Lee & Smith's "128 sets of 4 entries" as the
/// high-water mark (and notes such a BTB "would be nearly as large as
/// our entire microprocessor chip").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for BtbConfig {
    fn default() -> BtbConfig {
        BtbConfig { sets: 128, ways: 4 }
    }
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    pc: u32,
    target: u32,
    /// 2-bit direction counter.
    counter: u8,
    /// LRU stamp.
    used: u64,
}

/// Counters accumulated by a BTB evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups that hit an entry.
    pub hits: u64,
    /// Branches predicted correctly: a taken branch hit with the right
    /// target and a taken-predicting counter, or a not-taken branch
    /// that either missed or hit with a not-taken-predicting counter.
    pub correct: u64,
    /// Total branches evaluated.
    pub total: u64,
    /// Entries evicted.
    pub evictions: u64,
}

impl BtbStats {
    /// The effectiveness ratio (the paper quotes up to 78% for the
    /// 128×4 Lee-Smith configuration).
    pub fn effectiveness(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// A set-associative branch target buffer with 2-bit direction counters
/// and LRU replacement.
#[derive(Debug, Clone)]
pub struct Btb {
    cfg: BtbConfig,
    sets: Vec<Vec<BtbEntry>>,
    clock: u64,
    /// Accumulated statistics.
    pub stats: BtbStats,
}

impl Btb {
    /// Create a BTB.
    ///
    /// # Panics
    ///
    /// Panics when `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: BtbConfig) -> Btb {
        assert!(
            cfg.sets.is_power_of_two() && cfg.sets >= 1,
            "sets must be a power of two"
        );
        assert!(cfg.ways >= 1, "ways must be at least 1");
        Btb {
            cfg,
            sets: vec![Vec::new(); cfg.sets],
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    fn set_index(&self, pc: u32) -> usize {
        ((pc >> 1) as usize) & (self.cfg.sets - 1)
    }

    /// Process one dynamic branch: predict, score, train.
    pub fn access(&mut self, e: &BranchEvent) {
        self.clock += 1;
        self.stats.total += 1;
        let clock = self.clock;
        let ways = self.cfg.ways;
        let idx = self.set_index(e.pc);
        let set = &mut self.sets[idx];

        let hit = set.iter_mut().find(|en| en.pc == e.pc);
        let correct = match &hit {
            Some(en) => {
                self.stats.hits += 1;
                let predict_taken = en.counter >= 2;
                if e.taken {
                    predict_taken && en.target == e.target
                } else {
                    !predict_taken
                }
            }
            // Miss predicts not-taken (fall through).
            None => !e.taken,
        };
        self.stats.correct += u64::from(correct);

        match hit {
            Some(en) => {
                en.counter = if e.taken {
                    (en.counter + 1).min(3)
                } else {
                    en.counter.saturating_sub(1)
                };
                en.target = e.target;
                en.used = clock;
            }
            None if e.taken => {
                // Allocate on taken branches only (a BTB of fall-through
                // branches would be useless).
                let entry = BtbEntry {
                    pc: e.pc,
                    target: e.target,
                    counter: 2,
                    used: clock,
                };
                if set.len() < ways {
                    set.push(entry);
                } else {
                    let lru = set
                        .iter_mut()
                        .min_by_key(|en| en.used)
                        .expect("ways >= 1 guarantees an entry");
                    *lru = entry;
                    self.stats.evictions += 1;
                }
            }
            None => {}
        }
    }

    /// Evaluate a whole trace (all transfer kinds — a BTB serves
    /// unconditional branches, calls and returns too).
    pub fn evaluate(mut self, trace: &Trace) -> BtbStats {
        for e in trace {
            self.access(e);
        }
        self.stats
    }
}

/// Direction-only predictor view of the BTB, for replaying a pipeline's
/// split predict/update stream (the fused [`Btb::access`] serves trace
/// evaluation, where the outcome is known at lookup time).
///
/// `predict` is read-only and `update` carries all mutation — counter
/// movement, LRU stamps and allocation (with a placeholder target of 0:
/// stored targets never influence hit/miss, counter or replacement
/// state, so direction behaviour is unaffected). `stats` accumulates
/// only through [`Btb::access`].
impl Predictor for Btb {
    fn predict(&mut self, pc: u32) -> bool {
        let idx = self.set_index(pc);
        match self.sets[idx].iter().find(|en| en.pc == pc) {
            Some(en) => en.counter >= 2,
            None => false,
        }
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.cfg.ways;
        let idx = self.set_index(pc);
        let set = &mut self.sets[idx];
        match set.iter_mut().find(|en| en.pc == pc) {
            Some(en) => {
                en.counter = if taken {
                    (en.counter + 1).min(3)
                } else {
                    en.counter.saturating_sub(1)
                };
                en.used = clock;
            }
            None if taken => {
                let entry = BtbEntry {
                    pc,
                    target: 0,
                    counter: 2,
                    used: clock,
                };
                if set.len() < ways {
                    set.push(entry);
                } else {
                    let lru = set
                        .iter_mut()
                        .min_by_key(|en| en.used)
                        .expect("ways >= 1 guarantees an entry");
                    *lru = entry;
                }
            }
            None => {}
        }
    }

    fn name(&self) -> String {
        format!("BTB {}x{}", self.cfg.sets, self.cfg.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_sim::BranchKind;

    fn ev(pc: u32, target: u32, taken: bool) -> BranchEvent {
        BranchEvent {
            pc,
            target,
            taken,
            kind: BranchKind::Cond,
        }
    }

    #[test]
    fn learns_a_steady_loop_branch() {
        let trace: Vec<_> = (0..100).map(|_| ev(0x10, 0x4, true)).collect();
        let stats = Btb::new(BtbConfig::default()).evaluate(&trace);
        // First access misses (predicted not-taken), rest are correct.
        assert_eq!(stats.correct, 99);
        assert_eq!(stats.total, 100);
    }

    #[test]
    fn not_taken_branches_correct_on_miss() {
        let trace: Vec<_> = (0..50).map(|_| ev(0x10, 0x40, false)).collect();
        let stats = Btb::new(BtbConfig::default()).evaluate(&trace);
        assert_eq!(stats.correct, 50);
        assert_eq!(stats.hits, 0, "never-taken branches are not allocated");
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        // 1 set × 2 ways, three hot branches mapping to the same set.
        let cfg = BtbConfig { sets: 1, ways: 2 };
        let mut trace = Vec::new();
        for _ in 0..30 {
            trace.push(ev(0x10, 0x2, true));
            trace.push(ev(0x20, 0x4, true));
            trace.push(ev(0x30, 0x6, true));
        }
        let stats = Btb::new(cfg).evaluate(&trace);
        assert!(stats.evictions > 0);
        // Round-robin over 3 branches with 2 ways: every access misses
        // after its entry was evicted.
        assert!(stats.effectiveness() < 0.5, "{stats:?}");
        // The same trace with enough ways is nearly perfect.
        let stats = Btb::new(BtbConfig { sets: 1, ways: 4 }).evaluate(&trace);
        assert!(stats.effectiveness() > 0.9, "{stats:?}");
    }

    #[test]
    fn wrong_target_counts_as_incorrect() {
        // An indirect-style branch that keeps changing target.
        let mut trace = Vec::new();
        for i in 0..40u32 {
            trace.push(ev(0x10, 0x100 + (i % 4) * 0x10, true));
        }
        let stats = Btb::new(BtbConfig::default()).evaluate(&trace);
        assert!(stats.effectiveness() < 0.30, "{stats:?}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        Btb::new(BtbConfig { sets: 3, ways: 1 });
    }
}

use std::collections::HashMap;

use crisp_sim::{BranchKind, Trace};

use crate::Predictor;

/// A prediction-accuracy result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accuracy {
    /// Correct predictions.
    pub correct: u64,
    /// Total predictions made.
    pub total: u64,
}

impl Accuracy {
    /// The correct fraction (0 when nothing was predicted).
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    fn record(&mut self, correct: bool) {
        self.total += 1;
        self.correct += u64::from(correct);
    }
}

/// The optimal static assignment for a trace: each branch's majority
/// direction, plus the resulting accuracy.
#[derive(Debug, Clone, Default)]
pub struct StaticOptimal {
    /// Per-branch majority direction (`pc → taken`), suitable for
    /// feeding back into `crisp_cc::apply_profile`.
    pub majority: HashMap<u32, bool>,
    /// Accuracy achieved by that assignment.
    pub accuracy: Accuracy,
}

/// Evaluate the *optimal static* prediction bit over a trace: for every
/// conditional branch choose the majority direction, then count matches.
/// This is the paper's "accuracy for optimal setting of a branch
/// prediction bit in the branch instruction".
pub fn evaluate_static_optimal(trace: &Trace) -> StaticOptimal {
    let mut taken_counts: HashMap<u32, (u64, u64)> = HashMap::new();
    for e in trace.iter().filter(|e| e.kind == BranchKind::Cond) {
        let c = taken_counts.entry(e.pc).or_insert((0, 0));
        c.0 += u64::from(e.taken);
        c.1 += 1;
    }
    let mut out = StaticOptimal::default();
    for (&pc, &(taken, total)) in &taken_counts {
        let majority = taken * 2 >= total; // ties predict taken
        out.majority.insert(pc, majority);
        let correct = if majority { taken } else { total - taken };
        out.accuracy.correct += correct;
        out.accuracy.total += total;
    }
    out
}

/// Run any [`Predictor`] over the conditional branches of a trace.
pub fn evaluate_predictor<P: Predictor>(trace: &Trace, predictor: &mut P) -> Accuracy {
    let mut acc = Accuracy::default();
    for e in trace.iter().filter(|e| e.kind == BranchKind::Cond) {
        let predicted = predictor.predict(e.pc);
        acc.record(predicted == e.taken);
        predictor.update(e.pc, e.taken);
    }
    acc
}

/// Convenience: evaluate an n-bit infinite-table dynamic predictor.
pub fn evaluate_dynamic(trace: &Trace, bits: u8) -> Accuracy {
    evaluate_predictor(trace, &mut crate::CounterPredictor::new(bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_sim::BranchEvent;

    fn cond(pc: u32, taken: bool) -> BranchEvent {
        BranchEvent {
            pc,
            target: 0x100,
            taken,
            kind: BranchKind::Cond,
        }
    }

    #[test]
    fn static_optimal_majority() {
        // Branch A: taken 8/10; branch B: taken 3/10.
        let mut t = Vec::new();
        for i in 0..10 {
            t.push(cond(0xA, i < 8));
            t.push(cond(0xB, i < 3));
        }
        let s = evaluate_static_optimal(&t);
        assert!(s.majority[&0xA]);
        assert!(!s.majority[&0xB]);
        assert_eq!(s.accuracy.correct, 8 + 7);
        assert_eq!(s.accuracy.total, 20);
    }

    #[test]
    fn always_taken_branch_is_perfect_everywhere() {
        let t: Vec<_> = (0..50).map(|_| cond(0x10, true)).collect();
        assert_eq!(evaluate_static_optimal(&t).accuracy.ratio(), 1.0);
        // Dynamic warms up within a couple of predictions.
        assert!(evaluate_dynamic(&t, 2).correct >= 48);
    }

    #[test]
    fn alternating_branch_favours_static() {
        // The paper's explanation for static beating dynamic on the
        // common benchmarks: "For the case where branches alternate
        // direction, static prediction gets 50% correct, while all the
        // dynamic schemes get 0% correct."
        let t: Vec<_> = (0..100).map(|i| cond(0x10, i % 2 == 0)).collect();
        let st = evaluate_static_optimal(&t);
        assert_eq!(st.accuracy.correct, 50);
        let d1 = evaluate_dynamic(&t, 1);
        assert!(
            d1.correct <= 1,
            "1-bit should mispredict almost always: {d1:?}"
        );
        let d2 = evaluate_dynamic(&t, 2);
        assert!(d2.ratio() <= 0.51, "{d2:?}");
    }

    #[test]
    fn non_conditional_events_ignored() {
        let t = vec![
            BranchEvent {
                pc: 0,
                target: 4,
                taken: true,
                kind: BranchKind::Uncond,
            },
            BranchEvent {
                pc: 8,
                target: 40,
                taken: true,
                kind: BranchKind::Call,
            },
            cond(0x10, true),
        ];
        assert_eq!(evaluate_static_optimal(&t).accuracy.total, 1);
        assert_eq!(evaluate_dynamic(&t, 2).total, 1);
    }

    #[test]
    fn empty_trace() {
        let t = Vec::new();
        assert_eq!(evaluate_static_optimal(&t).accuracy.total, 0);
        assert_eq!(evaluate_dynamic(&t, 3).ratio(), 0.0);
    }

    #[test]
    fn tie_predicts_taken() {
        let t = vec![cond(0x10, true), cond(0x10, false)];
        let s = evaluate_static_optimal(&t);
        assert!(s.majority[&0x10]);
        assert_eq!(s.accuracy.correct, 1);
    }
}

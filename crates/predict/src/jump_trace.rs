use crisp_sim::{BranchEvent, Trace};

use crate::Predictor;

/// Counters accumulated by a jump-trace evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JumpTraceStats {
    /// Correct predictions (hit + taken + right target, or miss +
    /// not taken).
    pub correct: u64,
    /// Total branches evaluated.
    pub total: u64,
}

impl JumpTraceStats {
    /// Correct fraction. The paper: "Results for the MU5 show only a
    /// 40-65 percent correct prediction rate for an eight entry
    /// jump-trace, barely better than tossing a coin."
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// The Manchester MU5 Jump Trace: a small fully-associative FIFO of
/// `(branch address → target)` pairs. A hit predicts the branch taken
/// to the stored target; a miss predicts sequential flow. Taken
/// branches are inserted; a not-taken occurrence evicts its entry.
#[derive(Debug, Clone)]
pub struct JumpTrace {
    capacity: usize,
    entries: Vec<(u32, u32)>, // FIFO order, oldest first
    /// Accumulated statistics.
    pub stats: JumpTraceStats,
}

impl JumpTrace {
    /// The MU5's published size.
    pub const MU5_ENTRIES: usize = 8;

    /// Create a jump trace with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> JumpTrace {
        assert!(capacity >= 1, "capacity must be at least 1");
        JumpTrace {
            capacity,
            entries: Vec::new(),
            stats: JumpTraceStats::default(),
        }
    }

    /// Process one dynamic branch.
    pub fn access(&mut self, e: &BranchEvent) {
        self.stats.total += 1;
        let hit = self.entries.iter().position(|&(pc, _)| pc == e.pc);
        let correct = match hit {
            Some(i) => {
                let (_, target) = self.entries[i];
                e.taken && target == e.target
            }
            None => !e.taken,
        };
        self.stats.correct += u64::from(correct);

        match (hit, e.taken) {
            (Some(i), true) => self.entries[i].1 = e.target,
            (Some(i), false) => {
                self.entries.remove(i);
            }
            (None, true) => {
                if self.entries.len() == self.capacity {
                    self.entries.remove(0);
                }
                self.entries.push((e.pc, e.target));
            }
            (None, false) => {}
        }
    }

    /// Evaluate a whole trace.
    pub fn evaluate(mut self, trace: &Trace) -> JumpTraceStats {
        for e in trace {
            self.access(e);
        }
        self.stats
    }
}

/// Direction-only predictor view of the jump trace, for replaying a
/// pipeline's split predict/update stream (the fused
/// [`JumpTrace::access`] serves trace evaluation).
///
/// `predict` is read-only; `update` carries all FIFO mutation, with a
/// placeholder target of 0 on insertion — stored targets never
/// influence hit/miss or FIFO order, so direction behaviour is
/// unaffected. `stats` accumulates only through [`JumpTrace::access`].
impl Predictor for JumpTrace {
    fn predict(&mut self, pc: u32) -> bool {
        self.entries.iter().any(|&(epc, _)| epc == pc)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let hit = self.entries.iter().position(|&(epc, _)| epc == pc);
        match (hit, taken) {
            (Some(_), true) => {}
            (Some(i), false) => {
                self.entries.remove(i);
            }
            (None, true) => {
                if self.entries.len() == self.capacity {
                    self.entries.remove(0);
                }
                self.entries.push((pc, 0));
            }
            (None, false) => {}
        }
    }

    fn name(&self) -> String {
        format!("jump trace, {} entries", self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_sim::BranchKind;

    fn ev(pc: u32, taken: bool) -> BranchEvent {
        BranchEvent {
            pc,
            target: pc + 0x40,
            taken,
            kind: BranchKind::Cond,
        }
    }

    #[test]
    fn hot_branch_predicted_after_first_visit() {
        let trace: Vec<_> = (0..20).map(|_| ev(0x10, true)).collect();
        let stats = JumpTrace::new(8).evaluate(&trace);
        assert_eq!(stats.correct, 19);
    }

    #[test]
    fn small_capacity_thrashes_on_wide_working_set() {
        // 12 distinct taken branches round-robin through 8 entries:
        // every access misses after eviction.
        let mut trace = Vec::new();
        for _ in 0..20 {
            for b in 0..12u32 {
                trace.push(ev(0x100 + b * 2, true));
            }
        }
        let small = JumpTrace::new(8).evaluate(&trace);
        let big = JumpTrace::new(16).evaluate(&trace);
        assert!(small.ratio() < 0.2, "{small:?}");
        assert!(big.ratio() > 0.9, "{big:?}");
    }

    #[test]
    fn not_taken_evicts() {
        let trace = vec![
            ev(0x10, true),
            ev(0x10, false),
            ev(0x10, true),
            ev(0x10, true),
        ];
        let stats = JumpTrace::new(8).evaluate(&trace);
        // taken(miss, wrong) / not-taken(hit, wrong) / taken(miss after
        // eviction, wrong) / taken(hit, right)
        assert_eq!(stats.correct, 1);
    }

    #[test]
    fn zero_capacity_panics() {
        let r = std::panic::catch_unwind(|| JumpTrace::new(0));
        assert!(r.is_err());
    }
}

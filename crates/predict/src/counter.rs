use std::collections::HashMap;

use crate::Predictor;

/// An n-bit saturating up/down counter per branch, with an infinite
/// table — J. Smith's "Strategy 2" family, exactly the dynamic schemes
/// the paper evaluated ("The two and three bit dynamic history
/// algorithms provide weighting, as described by J. Smith. The dynamic
/// history assumes an infinite size table").
///
/// With one bit this degenerates to "predict the same direction as last
/// time". Counters start at the weakly-not-taken value.
#[derive(Debug, Clone)]
pub struct CounterPredictor {
    bits: u8,
    max: u8,
    threshold: u8,
    table: HashMap<u32, u8>,
}

impl CounterPredictor {
    /// Create an n-bit counter predictor (`bits` in 1..=7).
    ///
    /// # Panics
    ///
    /// Panics when `bits` is 0 or larger than 7.
    pub fn new(bits: u8) -> CounterPredictor {
        assert!((1..=7).contains(&bits), "counter bits must be 1..=7");
        CounterPredictor {
            bits,
            max: (1 << bits) - 1,
            threshold: 1 << (bits - 1),
            table: HashMap::new(),
        }
    }

    /// The counter width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of distinct branches seen.
    pub fn branches_seen(&self) -> usize {
        self.table.len()
    }

    fn counter(&mut self, pc: u32) -> u8 {
        let init = self.threshold - 1; // weakly not taken
        *self.table.entry(pc).or_insert(init)
    }
}

impl Predictor for CounterPredictor {
    fn predict(&mut self, pc: u32) -> bool {
        self.counter(pc) >= self.threshold
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let max = self.max;
        let c = self.table.entry(pc).or_insert(self.threshold - 1);
        if taken {
            *c = (*c + 1).min(max);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn name(&self) -> String {
        format!("{}-bit dynamic", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_tracks_last_outcome() {
        let mut p = CounterPredictor::new(1);
        assert!(!p.predict(0)); // initial weakly-not-taken
        p.update(0, true);
        assert!(p.predict(0));
        p.update(0, false);
        assert!(!p.predict(0));
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut p = CounterPredictor::new(2);
        // Train strongly taken.
        for _ in 0..4 {
            p.update(0, true);
        }
        assert!(p.predict(0));
        // One not-taken must not flip a strongly-taken counter.
        p.update(0, false);
        assert!(p.predict(0));
        p.update(0, false);
        assert!(!p.predict(0));
    }

    #[test]
    fn counters_saturate() {
        let mut p = CounterPredictor::new(3);
        for _ in 0..100 {
            p.update(7, true);
        }
        // Saturated at 7; takes exactly 4 not-takens to flip (threshold 4).
        for _ in 0..3 {
            p.update(7, false);
        }
        assert!(p.predict(7));
        p.update(7, false);
        assert!(!p.predict(7));
    }

    #[test]
    fn branches_are_independent() {
        let mut p = CounterPredictor::new(2);
        p.update(0x10, true);
        p.update(0x10, true);
        assert!(p.predict(0x10));
        assert!(!p.predict(0x20));
        assert_eq!(p.branches_seen(), 2);
    }

    #[test]
    #[should_panic(expected = "counter bits")]
    fn zero_bits_rejected() {
        CounterPredictor::new(0);
    }
}

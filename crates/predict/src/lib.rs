//! Trace-driven branch-prediction models for the paper's Table 1 study
//! and its "Comparison to Other Schemes" section.
//!
//! The paper measured, over six programs: *optimal static* prediction
//! (the best possible setting of the per-branch prediction bit) against
//! one, two and three bits of *dynamic history* with an infinite table
//! (per J. Smith's weighted counters), and separately discusses the
//! Lee-Smith branch target buffer and the MU5 8-entry jump trace.
//! This crate implements all of them over [`crisp_sim::Trace`]s recorded
//! by the functional simulator.
//!
//! # Example
//!
//! ```
//! use crisp_predict::{evaluate_dynamic, evaluate_static_optimal};
//! use crisp_sim::{BranchEvent, BranchKind};
//!
//! // A branch that alternates: static gets 50%, dynamic gets ~0%.
//! let trace: Vec<BranchEvent> = (0..100)
//!     .map(|i| BranchEvent { pc: 0x10, target: 0x40, taken: i % 2 == 0, kind: BranchKind::Cond })
//!     .collect();
//! let st = evaluate_static_optimal(&trace);
//! let dy = evaluate_dynamic(&trace, 1);
//! assert_eq!(st.accuracy.correct, 50);
//! assert!(dy.correct <= 1);
//! ```

#![warn(missing_docs)]

mod btb;
mod counter;
mod evaluate;
mod finite;
mod jump_trace;

pub use btb::{Btb, BtbConfig, BtbStats};
pub use counter::CounterPredictor;
// The shared predictor trait lives in `crisp_sim` (the cycle engine
// consumes it too); re-exported here so trace-driven code keeps its
// historical import path.
pub use crisp_sim::Predictor;
pub use evaluate::{
    evaluate_dynamic, evaluate_predictor, evaluate_static_optimal, Accuracy, StaticOptimal,
};
pub use finite::FinitePredictor;
pub use jump_trace::{JumpTrace, JumpTraceStats};

use crate::Predictor;

/// A *finite* direct-mapped table of n-bit saturating counters, indexed
/// by branch address — what a real implementation would build instead of
/// Table 1's idealised infinite table.
///
/// The paper flags the idealisation explicitly: "The dynamic history
/// assumes an infinite size table, this makes the dynamic numbers
/// somewhat optimistic. In practice only a small number of recent
/// predictions would be cached." This model quantifies that optimism:
/// two branches whose parcel addresses collide modulo the table size
/// share (and fight over) one counter.
#[derive(Debug, Clone)]
pub struct FinitePredictor {
    bits: u8,
    threshold: u8,
    max: u8,
    mask: usize,
    counters: Vec<u8>,
}

impl FinitePredictor {
    /// Create a predictor with `bits`-wide counters (1..=7) and
    /// `entries` table slots (a power of two).
    ///
    /// # Panics
    ///
    /// Panics on a zero/oversized width or a non-power-of-two size.
    pub fn new(bits: u8, entries: usize) -> FinitePredictor {
        assert!((1..=7).contains(&bits), "counter bits must be 1..=7");
        assert!(
            entries.is_power_of_two() && entries >= 1,
            "table entries must be a power of two"
        );
        let threshold = 1 << (bits - 1);
        FinitePredictor {
            bits,
            threshold,
            max: (1 << bits) - 1,
            mask: entries - 1,
            counters: vec![threshold - 1; entries], // weakly not taken
        }
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Table size in entries.
    pub fn entries(&self) -> usize {
        self.mask + 1
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 1) as usize) & self.mask
    }
}

impl Predictor for FinitePredictor {
    fn predict(&mut self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= self.threshold
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(self.max);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn name(&self) -> String {
        format!("{}-bit dynamic, {} entries", self.bits, self.entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_predictor, CounterPredictor};
    use crisp_sim::{BranchEvent, BranchKind};

    fn cond(pc: u32, taken: bool) -> BranchEvent {
        BranchEvent {
            pc,
            target: 0,
            taken,
            kind: BranchKind::Cond,
        }
    }

    #[test]
    fn matches_infinite_table_without_aliasing() {
        // Two branches in distinct slots behave exactly like the
        // infinite-table predictor.
        let mut trace = Vec::new();
        for i in 0..200 {
            trace.push(cond(0x10, i % 5 != 0));
            trace.push(cond(0x12, i % 7 == 0));
        }
        let fin = evaluate_predictor(&trace, &mut FinitePredictor::new(2, 256));
        let inf = evaluate_predictor(&trace, &mut CounterPredictor::new(2));
        assert_eq!(fin, inf);
    }

    #[test]
    fn aliasing_degrades_accuracy() {
        // Two opposite-biased branches mapping to the SAME slot of a
        // 1-entry table destroy each other; a large table keeps them
        // apart.
        let mut trace = Vec::new();
        for _ in 0..200 {
            trace.push(cond(0x10, true));
            trace.push(cond(0x30, false));
        }
        let small = evaluate_predictor(&trace, &mut FinitePredictor::new(2, 1));
        let big = evaluate_predictor(&trace, &mut FinitePredictor::new(2, 256));
        assert!(big.ratio() > 0.95, "{big:?}");
        assert!(small.ratio() < 0.6, "{small:?}");
    }

    #[test]
    fn index_uses_parcel_granularity() {
        let p = FinitePredictor::new(2, 16);
        assert_eq!(p.index(0x20), p.index(0x20));
        assert_ne!(p.index(0x20), p.index(0x22));
        // Wraps at entries*2 bytes.
        assert_eq!(p.index(0x20), p.index(0x20 + 32));
    }

    #[test]
    fn name_is_descriptive() {
        let p = FinitePredictor::new(3, 64);
        assert_eq!(p.name(), "3-bit dynamic, 64 entries");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        FinitePredictor::new(2, 3);
    }
}
